// Single-writer regular storage over crash-prone base objects, in the style
// of Attiya–Bar-Noy–Dolev [3] — the paper's third target system (Section V-A).
//
// A write sends STORE(ts, val) to every base object and completes on
// acknowledgements from a majority; a read queries every base object and
// returns the highest-timestamped value among a majority of answers.
// Base objects store monotonically: an older STORE never overwrites a newer
// one, but is still acknowledged.
//
// Regularity: a read returns a value at least as fresh as the last write that
// *completed* before the read started, and never fresher than the latest
// started write. The invariant uses ghost snapshots of the writer's state
// taken at read start/completion (the same specification escape hatch the
// paper uses, cf. its footnote 7).
//
// The "wrong regularity" variant (Section V-A) instead demands that a read
// return the *latest started* write even when the two operations are
// concurrent — deliberately too strong; its counterexample is a read
// overlapping an incomplete write.
#pragma once

#include "core/protocol.hpp"

namespace mpb::protocols {

struct StorageConfig {
  unsigned bases = 3;
  unsigned readers = 1;
  unsigned writes = 2;          // sequential writes the writer performs
  bool quorum_model = true;     // false: counting single-message model
  bool wrong_regularity = false;  // verify the deliberately wrong property

  [[nodiscard]] unsigned majority() const noexcept { return bases / 2 + 1; }
  // "(B,R)" — the paper's setting notation.
  [[nodiscard]] std::string setting() const;
};

[[nodiscard]] Protocol make_regular_storage(const StorageConfig& cfg);

// Symmetric process groups of make_regular_storage(cfg): the base objects
// and the readers.
[[nodiscard]] std::vector<std::vector<ProcessId>> storage_symmetric_roles(
    const StorageConfig& cfg);

// Value stored by the write with timestamp ts.
[[nodiscard]] constexpr Value storage_value_for(Value ts) noexcept { return ts * 10; }

// Writer local-variable indices (the ghost snapshots peek at these).
inline constexpr unsigned kWrWts = 0;          // latest started write ts
inline constexpr unsigned kWrInFlight = 1;
inline constexpr unsigned kWrCompletedTs = 2;  // latest completed write ts

// Reader local-variable indices.
inline constexpr unsigned kRdStarted = 0;
inline constexpr unsigned kRdSnapTs = 1;   // ghost: completedTs at read start
inline constexpr unsigned kRdRetTs = 2;    // returned timestamp, -1 = none yet
inline constexpr unsigned kRdEndSnap = 3;  // ghost: wts at read completion

}  // namespace mpb::protocols
