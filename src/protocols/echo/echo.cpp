#include "protocols/echo/echo.hpp"

#include <algorithm>

#include "check/registry.hpp"
#include "mp/builder.hpp"

namespace mpb::protocols {

namespace {

// Honest receiver locals: per-initiator slots [echoed_0.., accepted_0..].
// Initiator slot i occupies echoed at index i and accepted at n_initiators+i.

// Honest / Byzantine initiator locals.
constexpr unsigned kInitStarted = 0;
constexpr unsigned kInitCnt = 1;      // single-message model: tally for my value
constexpr unsigned kInitCntB = 2;     // Byz single-message model: tally for value B

}  // namespace

std::string EchoConfig::setting() const {
  return "(" + std::to_string(honest_receivers) + "," +
         std::to_string(honest_initiators) + "," + std::to_string(byz_receivers) +
         "," + std::to_string(byz_initiators) + ")";
}

Protocol make_echo_multicast(const EchoConfig& cfg) {
  std::string name = cfg.quorum_model ? "echo-quorum" : "echo-1msg";
  if (cfg.tolerance >= 0 &&
      static_cast<unsigned>(cfg.tolerance) < cfg.byz_receivers) {
    name += "-wrong";
  }
  mp::ProtocolBuilder b(name + cfg.setting());

  const unsigned n_init = cfg.honest_initiators + cfg.byz_initiators;
  const Value q = static_cast<Value>(cfg.threshold());

  const MsgType mINIT = b.msg("INIT");
  const MsgType mECHO = b.msg("ECHO");
  const MsgType mDELIVER = b.msg("DELIVER");

  // --- processes: initiators (honest then Byzantine), then receivers
  // (honest then Byzantine) ---
  std::vector<ProcessId> initiators, receivers;
  for (unsigned i = 0; i < cfg.honest_initiators; ++i) {
    std::vector<std::pair<std::string, Value>> vars{{"started", 0}};
    if (!cfg.quorum_model) vars.push_back({"cnt", 0});
    initiators.push_back(b.process("initiator" + std::to_string(i), "Initiator", vars));
  }
  for (unsigned i = 0; i < cfg.byz_initiators; ++i) {
    std::vector<std::pair<std::string, Value>> vars{{"started", 0}};
    if (!cfg.quorum_model) vars.insert(vars.end(), {{"cntA", 0}, {"cntB", 0}});
    initiators.push_back(b.process("byz_initiator" + std::to_string(i),
                                   "ByzInitiator", vars, /*byzantine=*/true));
  }
  for (unsigned i = 0; i < cfg.honest_receivers; ++i) {
    std::vector<std::pair<std::string, Value>> vars;
    for (unsigned s = 0; s < n_init; ++s) vars.push_back({"echoed" + std::to_string(s), 0});
    for (unsigned s = 0; s < n_init; ++s) vars.push_back({"accepted" + std::to_string(s), 0});
    receivers.push_back(b.process("receiver" + std::to_string(i), "Receiver", vars));
  }
  for (unsigned i = 0; i < cfg.byz_receivers; ++i) {
    std::vector<std::pair<std::string, Value>> vars;
    if (cfg.honest_initiators > 0) vars.push_back({"bogusSent", 0});
    receivers.push_back(b.process("byz_receiver" + std::to_string(i), "ByzReceiver",
                                  vars, /*byzantine=*/true));
  }

  ProcessMask init_mask = 0, recv_mask = 0, honest_init_mask = 0;
  for (ProcessId p : initiators) init_mask |= mask_of(p);
  for (ProcessId p : receivers) recv_mask |= mask_of(p);
  for (unsigned i = 0; i < cfg.honest_initiators; ++i) {
    honest_init_mask |= mask_of(initiators[i]);
  }

  // Map process id -> initiator slot (for per-initiator receiver state).
  std::vector<int> init_slot(kMaxProcesses, -1);
  for (unsigned i = 0; i < n_init; ++i) init_slot[initiators[i]] = static_cast<int>(i);

  // --- initiator transitions ---
  auto add_collect = [&](ProcessId p, const std::string& tname, Value value) {
    // Certificate assembly: q echoes for `value` from distinct receivers.
    if (cfg.quorum_model) {
      b.transition(p, tname)
          .consumes("ECHO", static_cast<int>(q))
          .from(recv_mask)
          .guard([value](const GuardView& g) {
            return std::all_of(g.consumed.begin(), g.consumed.end(),
                               [value](const Message& m) { return m[0] == value; });
          })
          .effect([=, recv = receivers](EffectCtx& c) {
            for (ProcessId r : recv) c.send(r, mDELIVER, {value});
          })
          .sends("DELIVER", recv_mask)
          .reads_local(false)
          .writes_local(false)
          .priority(3);
    } else {
      const unsigned cnt_var = value == kByzValueB ? kInitCntB : kInitCnt;
      b.transition(p, tname)
          .consumes("ECHO", 1)
          .from(recv_mask)
          .guard([value](const GuardView& g) { return g.consumed[0][0] == value; })
          .effect([=, recv = receivers](EffectCtx& c) {
            const Value cnt = c.local(cnt_var) + 1;
            c.set_local(cnt_var, cnt);
            if (cnt == q) {
              for (ProcessId r : recv) c.send(r, mDELIVER, {value});
            }
          })
          .sends("DELIVER", recv_mask)
          .reads_local(false)
          .priority(3);
    }
  };

  for (unsigned i = 0; i < cfg.honest_initiators; ++i) {
    const ProcessId p = initiators[i];
    const Value v = echo_honest_value(i);
    b.transition(p, "MCAST")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[kInitStarted] == 0; })
        .effect([=, recv = receivers](EffectCtx& c) {
          c.set_local(kInitStarted, 1);
          for (ProcessId r : recv) c.send(r, mINIT, {v});
        })
        .sends("INIT", recv_mask)
        .reads(VarMask{1} << kInitStarted)
        .writes(VarMask{1} << kInitStarted)
        .priority(5);
    add_collect(p, "COLLECT", v);
  }

  for (unsigned i = 0; i < cfg.byz_initiators; ++i) {
    const ProcessId p = initiators[cfg.honest_initiators + i];
    // Equivocation: value A to the first half of the honest receivers, value
    // B to the rest, both to every Byzantine receiver (they cooperate).
    b.transition(p, "EQUIVOCATE")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[kInitStarted] == 0; })
        .effect([=, recv = receivers, hr = cfg.honest_receivers](EffectCtx& c) {
          c.set_local(kInitStarted, 1);
          const unsigned half = (hr + 1) / 2;
          for (unsigned r = 0; r < recv.size(); ++r) {
            if (r < half) {
              c.send(recv[r], mINIT, {kByzValueA});
            } else if (r < hr) {
              c.send(recv[r], mINIT, {kByzValueB});
            } else {  // Byzantine receivers get both
              c.send(recv[r], mINIT, {kByzValueA});
              c.send(recv[r], mINIT, {kByzValueB});
            }
          }
        })
        .sends("INIT", recv_mask)
        .reads(VarMask{1} << kInitStarted)
        .writes(VarMask{1} << kInitStarted)
        .priority(5);
    add_collect(p, "COLLECT_A", kByzValueA);
    add_collect(p, "COLLECT_B", kByzValueB);
  }

  // --- receiver transitions ---
  for (unsigned i = 0; i < cfg.honest_receivers; ++i) {
    const ProcessId r = receivers[i];
    // Peers for the agreement assertion (other honest receivers).
    std::vector<ProcessId> peers;
    for (unsigned j = 0; j < cfg.honest_receivers; ++j) {
      if (j != i) peers.push_back(receivers[j]);
    }
    VarMask echoed_vars = 0, accepted_vars = 0;
    for (unsigned slot = 0; slot < n_init; ++slot) {
      echoed_vars |= VarMask{1} << slot;
      accepted_vars |= VarMask{1} << (n_init + slot);
    }
    // Echo the first INIT per initiator (honest receivers never back two
    // values of the same initiator — the heart of agreement).
    b.transition(r, "ECHO")
        .consumes("INIT", 1)
        .from(init_mask)
        .guard([init_slot](const GuardView& g) {
          return g.local[static_cast<unsigned>(init_slot[g.consumed[0].sender()])] == 0;
        })
        .effect([init_slot, mECHO](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          c.set_local(static_cast<unsigned>(init_slot[m.sender()]), m[0]);
          c.send(m.sender(), mECHO, {m[0]});
        })
        .sends("ECHO", init_mask)
        .reply()
        .reads(echoed_vars)
        .writes(echoed_vars)
        .priority(4);

    // Accept the first delivery per initiator; assert agreement against the
    // other honest receivers at that moment (in-transition specification).
    auto& tb = b.transition(r, "ACCEPT")
        .consumes("DELIVER", 1)
        .from(init_mask)
        .guard([init_slot, n_init](const GuardView& g) {
          const unsigned slot =
              n_init + static_cast<unsigned>(init_slot[g.consumed[0].sender()]);
          return g.local[slot] == 0;
        })
        .effect([init_slot, n_init, peers](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          const unsigned slot =
              n_init + static_cast<unsigned>(init_slot[m.sender()]);
          for (ProcessId peer : peers) {
            const Value v = c.peek(peer, slot);
            c.assert_that(v == 0 || v == m[0], "agreement");
          }
          c.set_local(slot, m[0]);
        })
        .reads(accepted_vars)
        .writes(accepted_vars)
        .priority(1);
    for (ProcessId peer : peers) tb.peeks(peer, accepted_vars);
  }

  for (unsigned i = 0; i < cfg.byz_receivers; ++i) {
    const ProcessId r = receivers[cfg.honest_receivers + i];
    // A Byzantine receiver confirms everything it is sent — including both
    // values of an equivocating initiator.
    b.transition(r, "ECHO_ANY")
        .consumes("INIT", 1)
        .from(init_mask)
        .effect([mECHO](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          c.send(m.sender(), mECHO, {m[0]});
        })
        .sends("ECHO", init_mask)
        .reply()
        .reads_local(false)
        .writes_local(false)
        .priority(4);

    if (cfg.honest_initiators > 0) {
      // ... and sends an invalid confirmation to honest initiators.
      b.transition(r, "BOGUS_ECHO")
          .spontaneous()
          .guard([](const GuardView& g) { return g.local[0] == 0; })
          .effect([=, hi = cfg.honest_initiators, init = initiators](EffectCtx& c) {
            c.set_local(0, 1);
            for (unsigned h = 0; h < hi; ++h) {
              c.send(init[h], mECHO, {kBogusEchoValue});
            }
          })
          .sends("ECHO", honest_init_mask)
          .priority(4);
    }
  }

  // --- agreement property ---
  // No two honest receivers accept different values from the same initiator.
  std::vector<ProcessId> honest_recv(receivers.begin(),
                                     receivers.begin() + cfg.honest_receivers);
  b.property("agreement", [honest_recv, n_init](const State& s, const Protocol& proto) {
    for (unsigned slot = 0; slot < n_init; ++slot) {
      Value accepted = 0;
      for (ProcessId r : honest_recv) {
        const ProcessInfo& pi = proto.proc(r);
        const Value v = s.local_slice(pi.local_offset, pi.local_len)[n_init + slot];
        if (v == 0) continue;
        if (accepted == 0) {
          accepted = v;
        } else if (accepted != v) {
          return false;
        }
      }
    }
    return true;
  });

  return b.build();
}


std::vector<std::vector<ProcessId>> echo_symmetric_roles(const EchoConfig& cfg) {
  const unsigned n_init = cfg.honest_initiators + cfg.byz_initiators;
  std::vector<std::vector<ProcessId>> roles;
  if (cfg.byz_initiators == 0 && cfg.honest_receivers >= 2) {
    // No equivocator: every honest receiver is treated identically.
    std::vector<ProcessId> honest;
    for (unsigned i = 0; i < cfg.honest_receivers; ++i) {
      honest.push_back(static_cast<ProcessId>(n_init + i));
    }
    roles.push_back(std::move(honest));
  }
  if (cfg.byz_receivers >= 2) {
    std::vector<ProcessId> byz;
    for (unsigned i = 0; i < cfg.byz_receivers; ++i) {
      byz.push_back(static_cast<ProcessId>(n_init + cfg.honest_receivers + i));
    }
    roles.push_back(std::move(byz));
  }
  return roles;
}

}  // namespace mpb::protocols

namespace mpb::check {

// Check-facade registration: the echo schema and factory, rendered verbatim
// by mpbcheck's auto-generated per-model --help.
void register_echo_model(ModelRegistry& r) {
  r.add(ModelInfo{
      .name = "echo",
      .doc = "Echo Multicast (Reiter '94) under Byzantine equivocation",
      .params =
          {
              {.name = "honest-receivers",
               .def = 3,
               .min = 0,
               .max = 8,
               .doc = "honest receivers (echo once, accept once)"},
              {.name = "honest-initiators",
               .def = 0,
               .min = 0,
               .max = 4,
               .doc = "honest initiators (multicast one value)"},
              {.name = "byz-receivers",
               .def = 1,
               .min = 0,
               .max = 8,
               .doc = "Byzantine receivers (echo every INIT they see)"},
              {.name = "byz-initiators",
               .def = 1,
               .min = 0,
               .max = 4,
               .doc = "Byzantine initiators (equivocate two values)"},
              {.name = "tolerance",
               .def = -1,
               .min = -1,
               .max = 8,
               .doc = "tolerated Byzantine receivers sizing the echo "
                      "threshold; -1 = byz-receivers"},
              {.name = "single-message",
               .type = ParamType::kBool,
               .doc = "per-message counting model instead of quorum"},
          },
      .make =
          [](const ParamMap& p) {
            protocols::EchoConfig cfg{
                .honest_receivers = p.get_u("honest-receivers"),
                .honest_initiators = p.get_u("honest-initiators"),
                .byz_receivers = p.get_u("byz-receivers"),
                .byz_initiators = p.get_u("byz-initiators"),
                .tolerance = static_cast<int>(p.get("tolerance")),
                .quorum_model = !p.flag("single-message")};
            return Model{protocols::make_echo_multicast(cfg),
                         protocols::echo_symmetric_roles(cfg)};
          },
  });
}

}  // namespace mpb::check
