// Echo Multicast (Reiter's Rampart consistent multicast [26]) — the paper's
// Byzantine-tolerant target system (Section V-A).
//
// An initiator multicasts a value by sending INIT to every receiver; each
// receiver *echoes* the first INIT it sees from that initiator back to it; the
// initiator assembles an echo certificate — ⌈(N+t+1)/2⌉ echoes for the same
// value, N receivers, t tolerated Byzantine receivers — and sends DELIVER to
// every receiver, which accepts the first delivery per initiator.
//
// Agreement: no two honest receivers accept different values from the same
// initiator. It holds because two certificates for different values would
// need 2⌈(N+t+1)/2⌉ - t > N honest-receiver echoes, i.e. an honest receiver
// echoing both values — which honest receivers never do.
//
// Fault modelling (Section V-A): signatures are modelled by authenticated
// channels (a message's sender cannot be forged); certificate validity is the
// guard of the collect quorum transition. A *Byzantine initiator* equivocates:
// INIT(1) to one half of the honest receivers, INIT(2) to the other half and
// both to every Byzantine receiver, then tries to assemble certificates for
// both values. A *Byzantine receiver* echoes every INIT it receives (so it
// backs both of an equivocator's values) and sends an invalid confirmation to
// honest initiators. The "wrong agreement" variant (Table I/II) sets the
// protocol's tolerance t below the actual number of Byzantine receivers, so
// the threshold is too low and equivocation succeeds.
#pragma once

#include "core/protocol.hpp"

namespace mpb::protocols {

struct EchoConfig {
  unsigned honest_receivers = 3;
  unsigned honest_initiators = 0;
  unsigned byz_receivers = 1;
  unsigned byz_initiators = 1;
  // Tolerated Byzantine receivers used to size the echo threshold. -1 means
  // "match byz_receivers" (a correct deployment); setting it lower injects
  // the paper's "wrong agreement" specification bug.
  int tolerance = -1;
  bool quorum_model = true;  // false: counting single-message model

  [[nodiscard]] unsigned n_receivers() const noexcept {
    return honest_receivers + byz_receivers;
  }
  [[nodiscard]] unsigned effective_tolerance() const noexcept {
    return tolerance < 0 ? byz_receivers : static_cast<unsigned>(tolerance);
  }
  // ⌈(N + t + 1) / 2⌉ echoes form a certificate.
  [[nodiscard]] unsigned threshold() const noexcept {
    return (n_receivers() + effective_tolerance() + 2) / 2;
  }
  // "(HR,HI,BR,BI)" — the paper's setting notation.
  [[nodiscard]] std::string setting() const;
};

[[nodiscard]] Protocol make_echo_multicast(const EchoConfig& cfg);

// Symmetric process groups of make_echo_multicast(cfg): Byzantine receivers
// always; honest receivers only when no Byzantine initiator splits them into
// equivocation halves.
[[nodiscard]] std::vector<std::vector<ProcessId>> echo_symmetric_roles(
    const EchoConfig& cfg);

// Values used by initiators: Byzantine initiators equivocate between
// kByzValueA/kByzValueB; honest initiator i multicasts honest_value(i).
inline constexpr Value kByzValueA = 1;
inline constexpr Value kByzValueB = 2;
[[nodiscard]] constexpr Value echo_honest_value(unsigned initiator_index) noexcept {
  return static_cast<Value>(10 + initiator_index);
}
// The junk confirmation a Byzantine receiver sends to honest initiators.
inline constexpr Value kBogusEchoValue = 99;

}  // namespace mpb::protocols
