#include "protocols/collector/collector.hpp"

#include "check/registry.hpp"
#include "mp/builder.hpp"

namespace mpb::protocols {

namespace {

constexpr unsigned kCollCnt = 1;  // single-message model tally

}  // namespace

std::string CollectorConfig::setting() const {
  return "(n=" + std::to_string(senders) + ",l=" + std::to_string(quorum) +
         (noise > 0 ? ",k=" + std::to_string(noise) : "") + ")";
}

Protocol make_collector(const CollectorConfig& cfg) {
  mp::ProtocolBuilder b(std::string(cfg.quorum_model ? "collector-quorum"
                                                     : "collector-1msg") +
                        cfg.setting());

  const MsgType mPING = b.msg("PING");

  std::vector<std::pair<std::string, Value>> coll_vars{{"done", 0}};
  if (!cfg.quorum_model) coll_vars.push_back({"cnt", 0});
  const ProcessId collector = b.process("collector", "Collector", coll_vars);

  std::vector<ProcessId> senders;
  ProcessMask sender_mask = 0;
  for (unsigned i = 0; i < cfg.senders; ++i) {
    const ProcessId s =
        b.process("sender" + std::to_string(i), "Sender", {{"sent", 0}});
    senders.push_back(s);
    sender_mask |= mask_of(s);
  }

  for (ProcessId s : senders) {
    b.transition(s, "SEND")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[0] == 0; })
        .effect([collector, mPING](EffectCtx& c) {
          c.set_local(0, 1);
          c.send(collector, mPING, {});
        })
        .sends("PING", mask_of(collector))
        .priority(5);
  }

  if (cfg.quorum_model) {
    b.transition(collector, "COLLECT")
        .consumes("PING", static_cast<int>(cfg.quorum))
        .from(sender_mask)
        .guard([](const GuardView& g) { return g.local[kCollDone] == 0; })
        .effect([](EffectCtx& c) { c.set_local(kCollDone, 1); })
        .priority(1);
  } else {
    b.transition(collector, "COLLECT")
        .consumes("PING", 1)
        .from(sender_mask)
        .effect([q = static_cast<Value>(cfg.quorum)](EffectCtx& c) {
          if (c.local(kCollDone) == 1) return;
          const Value cnt = c.local(kCollCnt) + 1;
          c.set_local(kCollCnt, cnt);
          if (cnt >= q) c.set_local(kCollDone, 1);
        })
        .priority(1);
  }

  // Independent noise processes: one local step each.
  for (unsigned i = 0; i < cfg.noise; ++i) {
    const ProcessId p =
        b.process("noise" + std::to_string(i), "Noise", {{"stepped", 0}});
    b.transition(p, "STEP")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[0] == 0; })
        .effect([](EffectCtx& c) { c.set_local(0, 1); })
        .priority(3);
  }

  // Sanity invariant: the collector can only be done once at least `quorum`
  // senders have actually fired.
  b.property("collector_done_implies_quorum",
             [collector, senders, q = cfg.quorum](const State& s,
                                                  const Protocol& proto) {
               const ProcessInfo& pi = proto.proc(collector);
               if (s.local_slice(pi.local_offset, pi.local_len)[kCollDone] == 0) {
                 return true;
               }
               unsigned fired = 0;
               for (ProcessId snd : senders) {
                 const ProcessInfo& si = proto.proc(snd);
                 fired += s.local_slice(si.local_offset, si.local_len)[0] == 1;
               }
               return fired >= q;
             });

  return b.build();
}


std::vector<std::vector<ProcessId>> collector_symmetric_roles(
    const CollectorConfig& cfg) {
  std::vector<std::vector<ProcessId>> roles;
  std::vector<ProcessId> senders, noise;
  for (unsigned i = 0; i < cfg.senders; ++i) {
    senders.push_back(static_cast<ProcessId>(1 + i));  // collector is process 0
  }
  for (unsigned i = 0; i < cfg.noise; ++i) {
    noise.push_back(static_cast<ProcessId>(1 + cfg.senders + i));
  }
  if (senders.size() >= 2) roles.push_back(std::move(senders));
  if (noise.size() >= 2) roles.push_back(std::move(noise));
  return roles;
}

}  // namespace mpb::protocols

namespace mpb::check {

// Check-facade registration: the collector schema and factory, rendered
// verbatim by mpbcheck's auto-generated per-model --help.
void register_collector_model(ModelRegistry& r) {
  r.add(ModelInfo{
      .name = "collector",
      .doc = "quorum PING collector, the Section II-C state-inflation toy",
      .params =
          {
              {.name = "senders",
               .def = 4,
               .min = 0,
               .max = 16,
               .doc = "sender processes, one PING each"},
              {.name = "quorum",
               .def = 3,
               .min = 1,
               .max = 16,
               .doc = "pings the collector consumes in one step (l)"},
              {.name = "noise",
               .def = 0,
               .min = 0,
               .max = 16,
               .doc = "independent noise processes, one local event each (k)"},
              {.name = "single-message",
               .type = ParamType::kBool,
               .doc = "per-message counting model instead of quorum"},
          },
      .make =
          [](const ParamMap& p) {
            protocols::CollectorConfig cfg{
                .senders = p.get_u("senders"),
                .quorum = p.get_u("quorum"),
                .quorum_model = !p.flag("single-message"),
                .noise = p.get_u("noise")};
            return Model{protocols::make_collector(cfg),
                         protocols::collector_symmetric_roles(cfg)};
          },
  });
}

}  // namespace mpb::check
