// A minimal synthetic protocol for the Section II-C state-inflation
// experiment: n sender processes each fire one PING at a collector; the
// collector consumes a quorum of l pings in one step (quorum model) or counts
// them one by one (single-message model).
//
// The paper argues that expressing an l-message quorum transition through
// single-message transitions inflates the state count from at most k!k to
// (k+l)!(k+l); sweeping l with this protocol makes the gap measurable.
#pragma once

#include "core/protocol.hpp"

namespace mpb::protocols {

struct CollectorConfig {
  unsigned senders = 4;
  unsigned quorum = 3;        // l: messages the collector needs
  bool quorum_model = true;
  // Extra independent "noise" processes, each firing one local event; they
  // model the k concurrently enabled transitions of the paper's bound.
  unsigned noise = 0;

  [[nodiscard]] std::string setting() const;
};

[[nodiscard]] Protocol make_collector(const CollectorConfig& cfg);

// Symmetric process groups of make_collector(cfg): the senders and the noise
// processes.
[[nodiscard]] std::vector<std::vector<ProcessId>> collector_symmetric_roles(
    const CollectorConfig& cfg);

// Collector local-variable indices.
inline constexpr unsigned kCollDone = 0;

}  // namespace mpb::protocols
