#include "serve/jobs.hpp"

#include <algorithm>

namespace mpb::serve {

namespace {

// Keep this many finished jobs findable for late status queries.
constexpr std::size_t kHistoryCap = 256;

// How often running jobs publish progress (engine events between snapshots).
constexpr std::uint64_t kProgressEveryEvents = 4096;

}  // namespace

std::string_view to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

Job::Job(std::uint64_t id_in, check::CheckRequest req, std::string key)
    : id(id_in),
      model(req.model),
      strategy(req.strategy),
      cache_key(std::move(key)),
      request_(std::move(req)),
      cancel_(std::make_shared<std::atomic<bool>>(false)),
      submitted_(std::chrono::steady_clock::now()) {}

ProgressSnapshot Job::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progress_;
}

std::optional<check::CheckResult> Job::result() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_;
}

std::string Job::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

double Job::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_set_) return 0.0;
  return std::chrono::duration<double>(started_ - submitted_).count();
}

JobQueue::JobQueue(unsigned workers, std::size_t queue_depth, JobLimits limits,
                   ResultCache* cache, Metrics* metrics)
    : workers_(std::max(1u, workers)),
      queue_depth_(std::max<std::size_t>(1, queue_depth)),
      cache_(cache),
      metrics_(metrics),
      limits_(limits) {
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { close(/*drain=*/false); }

std::shared_ptr<Job> JobQueue::submit(check::CheckRequest req) {
  // Clamp against the server limits outside the lock (pure computation).
  JobLimits lim = limits();
  req.explore.threads = std::clamp(req.explore.threads, 1u, lim.max_threads);
  // Distributed ranks compete for the same CPUs as worker threads, so they
  // share the max_threads ceiling. The budget/guard clamps below apply *per
  // rank* — each rank is its own process with its own clock and RSS (see
  // docs/SERVICE.md).
  req.dist_ranks = std::min(req.dist_ranks, lim.max_threads);
  if (lim.max_states != 0) {
    req.explore.max_states = std::min(req.explore.max_states, lim.max_states);
  }
  req.explore.max_seconds = std::min(req.explore.max_seconds, lim.max_seconds);
  req.explore.guard.watchdog_seconds =
      std::min(req.explore.guard.watchdog_seconds, lim.watchdog_seconds);
  if (lim.max_memory_bytes != 0) {
    req.explore.guard.max_memory_bytes =
        req.explore.guard.max_memory_bytes == 0
            ? lim.max_memory_bytes
            : std::min(req.explore.guard.max_memory_bytes,
                       lim.max_memory_bytes);
  }
  // Spill tier: the client only opts in (collapse mode + any spill field);
  // the directory is always the server's. Without a server-side spill_dir
  // the tier is off regardless of what the request asked for.
  if (req.explore.visited == VisitedMode::kCollapse && !lim.spill_dir.empty() &&
      (!req.explore.spill_dir.empty() || req.explore.spill_mb != 0)) {
    req.explore.spill_dir = lim.spill_dir;
    if (lim.spill_mb != 0) {
      req.explore.spill_mb = req.explore.spill_mb == 0
                                 ? lim.spill_mb
                                 : std::min(req.explore.spill_mb, lim.spill_mb);
    }
  } else {
    req.explore.spill_dir.clear();
    req.explore.spill_mb = 0;
  }
  // The daemon serializes results explicitly; keep the process-global bench
  // sink out of the picture.
  req.record = false;

  std::string key = cache_key(req).value_or("");

  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || queue_.size() >= queue_depth_) {
    if (metrics_ != nullptr) ++metrics_->jobs_rejected;
    return nullptr;
  }
  auto job = std::make_shared<Job>(next_id_++, std::move(req), std::move(key));
  if (metrics_ != nullptr) ++metrics_->jobs_submitted;

  // Cache probe: a hit completes the job without ever queuing it.
  if (!job->cache_key.empty() && cache_ != nullptr) {
    if (auto hit = cache_->get(job->cache_key)) {
      if (metrics_ != nullptr) {
        ++metrics_->cache_hits;
        if (hit->verdict() == Verdict::kViolated) ++metrics_->jobs_done_violated;
        else ++metrics_->jobs_done_holds;
      }
      {
        std::lock_guard<std::mutex> jlock(job->mu_);
        job->result_ = std::move(*hit);
      }
      job->cached_ = true;
      job->state_.store(JobState::kDone, std::memory_order_release);
      history_.push_back(job);
      while (history_.size() > kHistoryCap) history_.pop_front();
      return job;
    }
    if (metrics_ != nullptr) ++metrics_->cache_misses;
  }

  queue_.push_back(job);
  history_.push_back(job);
  while (history_.size() > kHistoryCap) history_.pop_front();
  lock.unlock();
  cv_.notify_one();
  return job;
}

std::shared_ptr<Job> JobQueue::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& job : history_) {
    if (job->id == id) return job;
  }
  return nullptr;
}

bool JobQueue::cancel(std::uint64_t id) {
  std::shared_ptr<Job> job = find(id);
  if (!job) return false;
  job->request_cancel();
  // A job still waiting in the queue is retired right here; the worker that
  // eventually pops it skips cancelled jobs.
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find(queue_.begin(), queue_.end(), job);
  if (it != queue_.end()) {
    queue_.erase(it);
    job->state_.store(JobState::kCancelled, std::memory_order_release);
    if (metrics_ != nullptr) ++metrics_->jobs_cancelled;
  }
  return true;
}

void JobQueue::set_limits(const JobLimits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
}

JobLimits JobQueue::limits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limits_;
}

void JobQueue::close(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ && threads_.empty()) return;
    closed_ = true;
    if (!drain) {
      for (const auto& job : queue_) {
        job->request_cancel();
        job->state_.store(JobState::kCancelled, std::memory_order_release);
        if (metrics_ != nullptr) ++metrics_->jobs_cancelled;
      }
      queue_.clear();
      for (const auto& job : running_jobs_) job->request_cancel();
    }
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

std::uint64_t JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_count_;
}

std::vector<RunningJobSample> JobQueue::running_samples() const {
  std::vector<std::shared_ptr<Job>> running;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running = running_jobs_;
  }
  std::vector<RunningJobSample> out;
  out.reserve(running.size());
  for (const auto& job : running) {
    const ProgressSnapshot p = job->progress();
    RunningJobSample s;
    s.id = job->id;
    s.states_per_sec =
        p.seconds > 0.0 ? static_cast<double>(p.states) / p.seconds : 0.0;
    s.sleep_blocked = p.sleep_blocked;
    s.forwarded_states = p.forwarded_states;
    out.push_back(s);
  }
  return out;
}

void JobQueue::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (job->state() != JobState::kQueued) continue;  // cancelled in queue
      job->state_.store(JobState::kRunning, std::memory_order_release);
      ++running_count_;
      running_jobs_.push_back(job);
    }
    run_job(job);
  }
}

void JobQueue::run_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> jlock(job->mu_);
    job->started_ = std::chrono::steady_clock::now();
    job->started_set_ = true;
  }
  if (metrics_ != nullptr) metrics_->add_queue_latency(job->queue_seconds());

  // A cancel that raced the dequeue: don't bother starting the engine.
  if (job->cancel_requested()) {
    finish(job, JobState::kCancelled);
    return;
  }

  check::CheckRequest req = std::move(job->request_);
  req.explore.cancel = job->cancel_;
  req.explore.progress_every_events = kProgressEveryEvents;
  const std::shared_ptr<Job> observer = job;  // keep alive inside the hook
  req.explore.on_progress = [observer](const ExploreStats& s) {
    std::lock_guard<std::mutex> jlock(observer->mu_);
    observer->progress_.states = s.states_stored;
    observer->progress_.events = s.events_executed;
    observer->progress_.frontier = s.frontier;
    observer->progress_.sleep_blocked = s.sleep_blocked;
    observer->progress_.forwarded_states = s.forwarded_states;
    observer->progress_.seconds = s.seconds;
    ++observer->progress_.seq;
  };

  try {
    check::CheckResult result = check::run_check(std::move(req));
    const Verdict verdict = result.verdict();
    const bool cancelled =
        job->cancel_requested() && verdict == Verdict::kResourceLimit;
    {
      std::lock_guard<std::mutex> jlock(job->mu_);
      job->result_ = std::move(result);
    }
    if (cancelled) {
      finish(job, JobState::kCancelled);
      return;
    }
    if (!job->cache_key.empty() && cache_ != nullptr) {
      if (const auto r = job->result()) cache_->put(job->cache_key, *r);
    }
    if (metrics_ != nullptr) {
      if (verdict == Verdict::kViolated) ++metrics_->jobs_done_violated;
      else if (verdict == Verdict::kHolds) ++metrics_->jobs_done_holds;
      else ++metrics_->jobs_done_limit;
    }
    finish(job, JobState::kDone);
  } catch (const check::CheckError& e) {
    {
      std::lock_guard<std::mutex> jlock(job->mu_);
      job->error_ = e.what();
    }
    if (metrics_ != nullptr) ++metrics_->jobs_failed;
    finish(job, JobState::kFailed);
  }
}

void JobQueue::finish(const std::shared_ptr<Job>& job, JobState final_state) {
  if (final_state == JobState::kCancelled && metrics_ != nullptr) {
    ++metrics_->jobs_cancelled;
  }
  job->state_.store(final_state, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  --running_count_;
  const auto it =
      std::find(running_jobs_.begin(), running_jobs_.end(), job);
  if (it != running_jobs_.end()) running_jobs_.erase(it);
}

}  // namespace mpb::serve
