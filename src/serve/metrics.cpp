#include "serve/metrics.hpp"

#include <cstdio>

#include "harness/bench_json.hpp"

namespace mpb::serve {

namespace {

void counter(std::string& out, const char* name, const char* help,
             std::uint64_t value) {
  out += "# HELP mpb_";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE mpb_";
  out += name;
  out += " counter\nmpb_";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void gauge(std::string& out, const char* name, const char* help,
           std::uint64_t value) {
  out += "# HELP mpb_";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE mpb_";
  out += name;
  out += " gauge\nmpb_";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string render_prometheus(const Metrics& m, const GaugeSample& g) {
  std::string out;
  out.reserve(2048);

  counter(out, "jobs_submitted_total", "check requests accepted",
          m.jobs_submitted.load(std::memory_order_relaxed));
  counter(out, "jobs_rejected_total",
          "check requests rejected (queue full or shutting down)",
          m.jobs_rejected.load(std::memory_order_relaxed));
  counter(out, "jobs_failed_total", "jobs that ended in an error",
          m.jobs_failed.load(std::memory_order_relaxed));
  counter(out, "jobs_cancelled_total", "jobs cancelled by client or shutdown",
          m.jobs_cancelled.load(std::memory_order_relaxed));

  out +=
      "# HELP mpb_jobs_completed_total jobs finished, by verdict\n"
      "# TYPE mpb_jobs_completed_total counter\n";
  out += "mpb_jobs_completed_total{verdict=\"holds\"} " +
         std::to_string(m.jobs_done_holds.load(std::memory_order_relaxed)) +
         '\n';
  out += "mpb_jobs_completed_total{verdict=\"violated\"} " +
         std::to_string(m.jobs_done_violated.load(std::memory_order_relaxed)) +
         '\n';
  out += "mpb_jobs_completed_total{verdict=\"limit\"} " +
         std::to_string(m.jobs_done_limit.load(std::memory_order_relaxed)) +
         '\n';

  counter(out, "cache_hits_total", "submits served from the result cache",
          m.cache_hits.load(std::memory_order_relaxed));
  counter(out, "cache_misses_total",
          "cacheable submits that had to run the search",
          m.cache_misses.load(std::memory_order_relaxed));

  double lat_sum = 0.0;
  std::uint64_t lat_count = 0;
  m.latency(&lat_sum, &lat_count);
  out +=
      "# HELP mpb_queue_latency_seconds submit-to-start latency of started "
      "jobs\n# TYPE mpb_queue_latency_seconds summary\n"
      "mpb_queue_latency_seconds_sum ";
  append_double(out, lat_sum);
  out += "\nmpb_queue_latency_seconds_count " + std::to_string(lat_count) + '\n';

  gauge(out, "jobs_queued", "jobs waiting in the queue", g.jobs_queued);
  gauge(out, "jobs_running", "jobs currently exploring", g.jobs_running);
  gauge(out, "cache_entries", "results held by the cache", g.cache_entries);
  gauge(out, "cache_bytes", "approximate bytes held by the cache",
        g.cache_bytes);

  out +=
      "# HELP mpb_job_states_per_sec live per-job exploration throughput\n"
      "# TYPE mpb_job_states_per_sec gauge\n";
  for (const RunningJobSample& r : g.running) {
    out += "mpb_job_states_per_sec{job=\"" + std::to_string(r.id) + "\"} ";
    append_double(out, r.states_per_sec);
    out += '\n';
  }

  out +=
      "# HELP mpb_job_sleep_blocked picks the dpor sleep sets skipped so far\n"
      "# TYPE mpb_job_sleep_blocked gauge\n";
  for (const RunningJobSample& r : g.running) {
    out += "mpb_job_sleep_blocked{job=\"" + std::to_string(r.id) + "\"} " +
           std::to_string(r.sleep_blocked) + '\n';
  }

  out +=
      "# HELP mpb_job_forwarded_states states forwarded across the rank mesh "
      "so far\n"
      "# TYPE mpb_job_forwarded_states gauge\n";
  for (const RunningJobSample& r : g.running) {
    out += "mpb_job_forwarded_states{job=\"" + std::to_string(r.id) + "\"} " +
           std::to_string(r.forwarded_states) + '\n';
  }

  gauge(out, "process_peak_rss_bytes", "peak resident set size (ru_maxrss)",
        static_cast<std::uint64_t>(harness::peak_rss_kb()) * 1024);
  out += "# HELP mpb_uptime_seconds time since the server started\n# TYPE "
         "mpb_uptime_seconds gauge\nmpb_uptime_seconds ";
  append_double(out, g.uptime_seconds);
  out += '\n';
  return out;
}

}  // namespace mpb::serve
