#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "check/serialize.hpp"

namespace mpb::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Minimum gap between progress pushes to one client (~5/s).
constexpr auto kProgressInterval = std::chrono::milliseconds(200);

util::Json error_json(std::string message) {
  util::Json j = util::Json::object();
  j["ok"] = false;
  j["error"] = std::move(message);
  return j;
}

util::Json status_json(const Job& job) {
  util::Json j = util::Json::object();
  j["ok"] = true;
  j["type"] = "status";
  j["job"] = job.id;
  j["state"] = std::string(to_string(job.state()));
  j["model"] = job.model;
  j["strategy"] = job.strategy;
  j["cached"] = job.cached();
  const ProgressSnapshot p = job.progress();
  if (p.seq != 0) {
    j["states"] = p.states;
    j["events"] = p.events;
    j["seconds"] = p.seconds;
  }
  switch (job.state()) {
    case JobState::kDone:
    case JobState::kCancelled:
      if (const auto r = job.result()) {
        j["result"] = check::result_to_json(*r);
      }
      break;
    case JobState::kFailed:
      j["error"] = job.error();
      break;
    default:
      break;
  }
  return j;
}

util::Json progress_json(const Job& job, const ProgressSnapshot& p) {
  util::Json j = util::Json::object();
  j["type"] = "progress";
  j["job"] = job.id;
  j["states"] = p.states;
  j["events"] = p.events;
  j["frontier"] = p.frontier;
  if (p.forwarded_states != 0) j["forwarded_states"] = p.forwarded_states;
  j["seconds"] = p.seconds;
  return j;
}

util::Json result_json(const Job& job) {
  util::Json j = util::Json::object();
  j["type"] = "result";
  j["job"] = job.id;
  j["state"] = std::string(to_string(job.state()));
  if (job.state() == JobState::kFailed) {
    j["error"] = job.error();
  } else if (const auto r = job.result()) {
    j["result"] = check::result_to_json(*r);
  }
  return j;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_double(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<LimitsFile> load_limits_file(const std::string& path,
                                           std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open limits file '" + path + "'";
    return std::nullopt;
  }
  LimitsFile out;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    // Trim; blank lines are fine.
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto eq = line.find('=');
    auto fail = [&](std::string_view why) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": " + std::string(why);
      }
      return std::nullopt;
    };
    if (eq == std::string::npos) return fail("expected 'key = value'");
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      if (b == std::string::npos) return std::string();
      const auto e = s.find_last_not_of(" \t");
      return s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::uint64_t u = 0;
    double d = 0.0;
    if (key == "max_threads") {
      if (!parse_u64(value, &u) || u == 0) return fail("bad max_threads");
      out.limits.max_threads = static_cast<unsigned>(u);
    } else if (key == "max_states") {
      if (!parse_u64(value, &u)) return fail("bad max_states");
      out.limits.max_states = u;
    } else if (key == "max_seconds") {
      if (!parse_double(value, &d) || d <= 0) return fail("bad max_seconds");
      out.limits.max_seconds = d;
    } else if (key == "watchdog_seconds") {
      if (!parse_double(value, &d) || d <= 0) {
        return fail("bad watchdog_seconds");
      }
      out.limits.watchdog_seconds = d;
    } else if (key == "max_memory_mb") {
      if (!parse_u64(value, &u)) return fail("bad max_memory_mb");
      out.limits.max_memory_bytes = u << 20;
    } else if (key == "spill_dir") {
      if (value.empty()) return fail("bad spill_dir");
      out.limits.spill_dir = value;
    } else if (key == "spill_mb") {
      if (!parse_u64(value, &u)) return fail("bad spill_mb");
      out.limits.spill_mb = u;
    } else if (key == "cache_mb") {
      if (!parse_u64(value, &u)) return fail("bad cache_mb");
      out.cache_bytes = u << 20;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return out;
}

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_bytes),
      queue_(std::make_unique<JobQueue>(cfg_.workers, cfg_.queue_depth,
                                        cfg_.limits, &cache_, &metrics_)),
      started_(Clock::now()) {}

Server::~Server() {
  begin_shutdown(/*drain=*/false);
  wait();
}

void Server::logf(std::string_view msg) {
  if (cfg_.log) cfg_.log(msg);
}

bool Server::start() {
  listen_fd_ = listen_unix(cfg_.socket_path);
  if (listen_fd_ < 0) {
    logf("cannot listen on unix socket '" + cfg_.socket_path +
         "': " + std::strerror(errno));
    return false;
  }
  if (cfg_.tcp_port != 0) {
    tcp_fd_ = listen_tcp(cfg_.tcp_port);
    if (tcp_fd_ < 0) {
      logf("cannot listen on 127.0.0.1:" + std::to_string(cfg_.tcp_port) +
           ": " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  logf("listening on " + cfg_.socket_path);
  return true;
}

void Server::begin_shutdown(bool drain) {
  bool expected = false;
  if (shutdown_requested_.compare_exchange_strong(expected, true)) {
    drain_.store(drain, std::memory_order_relaxed);
  }
  shutdown_cv_.notify_all();
}

void Server::reload_limits() {
  if (cfg_.limits_path.empty()) return;
  std::string err;
  const auto loaded = load_limits_file(cfg_.limits_path, &err);
  if (!loaded) {
    logf("limits reload failed, keeping previous limits: " + err);
    return;
  }
  queue_->set_limits(loaded->limits);
  if (loaded->cache_bytes) cache_.set_budget(*loaded->cache_bytes);
  logf("limits reloaded from " + cfg_.limits_path);
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] {
      return shutdown_requested_.load(std::memory_order_relaxed);
    });
    if (torn_down_) return;  // a second wait() (e.g. the destructor's) is a no-op
    torn_down_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  // With drain this blocks until every admitted job has finished; handlers
  // are still streaming while it runs, so attached clients see their final
  // results before we stop them below.
  queue_->close(drain_.load(std::memory_order_relaxed));
  stop_handlers_.store(true, std::memory_order_relaxed);
  reap_handlers(/*join_all=*/true);
  logf("shutdown complete");
}

std::string Server::metrics_text() {
  GaugeSample g;
  g.jobs_queued = queue_->queued();
  g.jobs_running = queue_->running();
  g.cache_entries = cache_.entries();
  g.cache_bytes = cache_.bytes();
  g.running = queue_->running_samples();
  g.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - started_).count();
  return render_prometheus(metrics_, g);
}

void Server::accept_loop() {
  while (!shutdown_requested_.load(std::memory_order_relaxed)) {
    struct pollfd pfds[2];
    nfds_t n = 0;
    pfds[n++] = {listen_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[n++] = {tcp_fd_, POLLIN, 0};
    const int pr = ::poll(pfds, n, 200);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) {
      reap_handlers(/*join_all=*/false);
      continue;
    }
    for (nfds_t i = 0; i < n; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::thread t([this, fd, done] {
        handle_connection(fd);
        done->store(true, std::memory_order_release);
      });
      std::lock_guard<std::mutex> lock(handlers_mu_);
      handlers_.push_back(Handler{std::move(t), std::move(done)});
    }
    reap_handlers(/*join_all=*/false);
  }
}

void Server::reap_handlers(bool join_all) {
  std::vector<Handler> finished;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Handler& h : finished) {
    if (h.thread.joinable()) h.thread.join();
  }
}

void Server::handle_connection(int fd) {
  LineReader reader(fd);
  // Jobs this connection submitted in attached mode: cancelled if the client
  // disconnects before they finish.
  std::vector<std::shared_ptr<Job>> owned;
  std::shared_ptr<Job> attached;
  std::uint64_t attached_seq = 0;
  Clock::time_point last_push = Clock::now() - kProgressInterval;
  bool alive = true;

  while (alive) {
    if (stop_handlers_.load(std::memory_order_relaxed)) {
      // Final flush: a drained shutdown finished the attached job; deliver
      // its result before closing.
      if (attached && attached->state() != JobState::kQueued &&
          attached->state() != JobState::kRunning) {
        send_line(fd, result_json(*attached));
        attached.reset();
      }
      break;
    }

    std::string line;
    const int timeout_ms = attached ? 50 : 200;
    const LineReader::Status st = reader.read_line(&line, timeout_ms);
    if (st == LineReader::Status::kClosed ||
        st == LineReader::Status::kError ||
        st == LineReader::Status::kOversized) {
      // An oversized *request* is a protocol violation: drop the connection
      // (responses are the big direction, and they go the other way).
      break;
    }

    if (st == LineReader::Status::kLine) {
      util::Json msg;
      bool parsed = true;
      try {
        msg = util::Json::parse(line);
      } catch (const util::JsonError& e) {
        parsed = false;
        alive = send_line(fd, error_json(e.what()));
      }
      if (parsed) {
        try {
          const std::string cmd =
              msg.is_object() ? msg.get_string("cmd", "") : "";
          if (cmd == "ping") {
            util::Json j = util::Json::object();
            j["ok"] = true;
            j["type"] = "pong";
            j["version"] = std::string(kProtocolVersion);
            alive = send_line(fd, j);
          } else if (cmd == "submit") {
            const util::Json* r = msg.find("request");
            if (r == nullptr) {
              alive = send_line(fd, error_json("submit: missing 'request'"));
            } else {
              check::CheckRequest req = check::request_from_json(*r);
              const bool detach = msg.get_bool("detach", false);
              std::shared_ptr<Job> job = queue_->submit(std::move(req));
              if (!job) {
                alive = send_line(
                    fd, error_json("queue full or shutting down"));
              } else {
                util::Json j = util::Json::object();
                j["ok"] = true;
                j["type"] = "accepted";
                j["job"] = job->id;
                j["cached"] = job->cached();
                alive = send_line(fd, j);
                if (!detach) {
                  owned.push_back(job);
                  attached = job;
                  attached_seq = 0;
                }
              }
            }
          } else if (cmd == "status" || cmd == "attach" || cmd == "cancel") {
            const auto id =
                static_cast<std::uint64_t>(msg.get_int("job", 0));
            std::shared_ptr<Job> job = queue_->find(id);
            if (!job) {
              alive = send_line(
                  fd, error_json("unknown job " + std::to_string(id)));
            } else if (cmd == "cancel") {
              queue_->cancel(id);
              util::Json j = util::Json::object();
              j["ok"] = true;
              j["type"] = "cancelled";
              j["job"] = id;
              alive = send_line(fd, j);
            } else {
              alive = send_line(fd, status_json(*job));
              if (cmd == "attach" && (job->state() == JobState::kQueued ||
                                      job->state() == JobState::kRunning)) {
                attached = job;
                attached_seq = job->progress().seq;
              }
            }
          } else if (cmd == "metrics") {
            util::Json j = util::Json::object();
            j["ok"] = true;
            j["type"] = "metrics";
            j["text"] = metrics_text();
            alive = send_line(fd, j);
          } else if (cmd == "shutdown") {
            const bool drain = msg.get_bool("drain", true);
            util::Json j = util::Json::object();
            j["ok"] = true;
            j["type"] = "shutting_down";
            j["drain"] = drain;
            alive = send_line(fd, j);
            begin_shutdown(drain);
          } else {
            alive = send_line(
                fd, error_json(cmd.empty() ? "missing 'cmd'"
                                           : "unknown command '" + cmd + "'"));
          }
        } catch (const util::JsonError& e) {
          alive = send_line(fd, error_json(e.what()));
        } catch (const check::CheckError& e) {
          alive = send_line(fd, error_json(e.what()));
        }
      }
    }

    // Streaming tick for the attached job (runs after commands and after
    // read timeouts alike).
    if (alive && attached) {
      const JobState s = attached->state();
      if (s == JobState::kQueued || s == JobState::kRunning) {
        const ProgressSnapshot p = attached->progress();
        const Clock::time_point now = Clock::now();
        if (p.seq != 0 && p.seq != attached_seq &&
            now - last_push >= kProgressInterval) {
          alive = send_line(fd, progress_json(*attached, p));
          attached_seq = p.seq;
          last_push = now;
        }
      } else {
        alive = send_line(fd, result_json(*attached));
        attached.reset();
      }
    }
  }

  // Disconnect semantics: dead clients don't keep burning worker time.
  for (const auto& job : owned) {
    const JobState s = job->state();
    if (s == JobState::kQueued || s == JobState::kRunning) {
      queue_->cancel(job->id);
    }
  }
  ::close(fd);
}

}  // namespace mpb::serve
