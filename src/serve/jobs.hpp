// Jobs and the bounded worker queue: the daemon's execution core.
//
// A Job is one submitted CheckRequest with a lifecycle
//
//   kQueued -> kRunning -> kDone | kFailed | kCancelled
//
// (or born kDone when the result cache already holds the answer). The queue
// runs jobs FIFO on a fixed pool of worker threads; submits beyond the
// configured depth are rejected immediately rather than buffered without
// bound, so a saturated daemon degrades by refusing work, not by growing.
//
// Per-job budgets. submit() clamps every request against the server's
// JobLimits before it is admitted: thread count, state cap, wall-clock
// budget, watchdog and memory guard. Client-supplied budgets tighter than
// the limits survive; looser ones are clamped down. The limits are the
// SIGHUP-reloadable knob (server.hpp::load_limits_file).
//
// Cancellation. Each job owns a shared cancel flag wired into
// ExploreConfig::cancel; request_cancel() flips it and the engine aborts at
// its next guard poll with kResourceLimit and partial stats. A cancelled
// job lands in kCancelled (its partial result is kept for status queries but
// never cached); a queued job that is cancelled never starts.
//
// Progress. Workers install an on_progress hook that publishes monotone
// ProgressSnapshots (sequence-numbered, so pollers can cheaply detect "new
// data since seq N"). Connection handlers poll snapshots; nothing in the
// engine ever blocks on a slow client.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"

namespace mpb::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
[[nodiscard]] std::string_view to_string(JobState s) noexcept;

// Server-side ceilings applied to every submitted request (0 / inf where a
// dimension is unlimited). Defaults keep a shared daemon responsive without
// getting in the way of the paper's workloads.
struct JobLimits {
  unsigned max_threads = 8;
  std::uint64_t max_states = 3'000'000;
  double max_seconds = 120.0;
  double watchdog_seconds = 600.0;
  std::uint64_t max_memory_bytes = 0;  // 0 = no memory guard imposed
  // Spill tier for collapse-mode jobs. The *server* owns the directory
  // choice: a client-supplied spill_dir is never trusted (it names a path on
  // the daemon's filesystem) — it is replaced by spill_dir here, or cleared
  // when the server configures none. spill_mb caps the client's resident
  // budget; 0 = leave the client's value alone.
  std::string spill_dir;
  std::uint64_t spill_mb = 0;
};

struct ProgressSnapshot {
  std::uint64_t states = 0;
  std::uint64_t events = 0;
  std::uint64_t frontier = 0;
  // Picks the dpor sleep sets skipped so far (0 for the other strategies) —
  // live reduction-quality signal, mirrored into the per-job metrics gauge.
  std::uint64_t sleep_blocked = 0;
  // States forwarded across the rank mesh so far (0 unless the job runs
  // distributed) — live partition-overhead signal, mirrored like the above.
  std::uint64_t forwarded_states = 0;
  double seconds = 0.0;
  std::uint64_t seq = 0;  // 0 = no snapshot published yet
};

class Job {
 public:
  Job(std::uint64_t id, check::CheckRequest req, std::string cache_key);

  const std::uint64_t id;
  const std::string model;
  const std::string strategy;
  const std::string cache_key;  // empty when the request is uncacheable

  [[nodiscard]] JobState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  // Done without running: the submit was answered from the result cache.
  [[nodiscard]] bool cached() const noexcept { return cached_; }

  void request_cancel() noexcept {
    cancel_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] ProgressSnapshot progress() const;
  // The final result; engaged once state() is kDone or kCancelled (partial
  // stats in the latter case).
  [[nodiscard]] std::optional<check::CheckResult> result() const;
  // The CheckError message of a kFailed job.
  [[nodiscard]] std::string error() const;
  // Seconds the job waited between submit and start (0 while still queued).
  [[nodiscard]] double queue_seconds() const;

 private:
  friend class JobQueue;

  check::CheckRequest request_;  // consumed by the worker that runs the job
  std::atomic<JobState> state_{JobState::kQueued};
  bool cached_ = false;
  std::shared_ptr<std::atomic<bool>> cancel_;

  mutable std::mutex mu_;
  ProgressSnapshot progress_;
  std::optional<check::CheckResult> result_;
  std::string error_;
  std::chrono::steady_clock::time_point submitted_;
  std::chrono::steady_clock::time_point started_;
  bool started_set_ = false;
};

class JobQueue {
 public:
  // `cache` and `metrics` must outlive the queue; either may be shared with
  // the rest of the server.
  JobQueue(unsigned workers, std::size_t queue_depth, JobLimits limits,
           ResultCache* cache, Metrics* metrics);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Admit a request: clamp it against the limits, probe the cache (a hit
  // returns a job already in kDone with cached() == true), else enqueue.
  // Returns nullptr when the queue is full or closed (the caller reports
  // the rejection to the client).
  std::shared_ptr<Job> submit(check::CheckRequest req);

  [[nodiscard]] std::shared_ptr<Job> find(std::uint64_t id) const;
  // Cancel by id: flips the job's flag; a still-queued job is completed as
  // kCancelled immediately. Returns false for unknown ids.
  bool cancel(std::uint64_t id);

  // Replace the limits applied to future submits (SIGHUP reload).
  void set_limits(const JobLimits& limits);
  [[nodiscard]] JobLimits limits() const;

  // Stop accepting work. With drain, workers finish everything already
  // queued; without, queued jobs are cancelled and running jobs get their
  // cancel flag flipped. Joins the workers; idempotent.
  void close(bool drain);

  [[nodiscard]] std::uint64_t queued() const;
  [[nodiscard]] std::uint64_t running() const;
  // Live throughput samples of the running jobs, for /metrics gauges.
  [[nodiscard]] std::vector<RunningJobSample> running_samples() const;

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finish(const std::shared_ptr<Job>& job, JobState final_state);

  const unsigned workers_;
  const std::size_t queue_depth_;
  ResultCache* const cache_;
  Metrics* const metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  JobLimits limits_;
  bool closed_ = false;
  std::uint64_t next_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  std::uint64_t running_count_ = 0;
  std::vector<std::shared_ptr<Job>> running_jobs_;
  // Every job ever admitted, for status lookups; pruned FIFO past a bound.
  std::deque<std::shared_ptr<Job>> history_;

  std::vector<std::thread> threads_;
};

}  // namespace mpb::serve
