// A thin blocking client for the NDJSON protocol (wire.hpp / server.hpp):
// connect, send one JSON object per line, read one back. mpbctl and the
// serve tests are both built on it, so the tool exercises exactly the code
// path the tests pin down.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/json.hpp"

namespace mpb::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), reader_(std::move(other.reader_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] bool connect_unix(const std::string& path);
  [[nodiscard]] bool connect_tcp(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  // Send one message; false on a broken connection.
  [[nodiscard]] bool send(const util::Json& j);

  // Read the next message, blocking up to timeout_ms (-1 = forever).
  // nullopt on timeout, EOF, socket error or malformed JSON.
  [[nodiscard]] std::optional<util::Json> read(int timeout_ms);

 private:
  int fd_ = -1;
  std::unique_ptr<class LineReader> reader_;
};

}  // namespace mpb::serve
