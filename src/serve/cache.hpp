// The result cache: completed CheckResults served to repeated requests
// without re-exploration.
//
// Keying. A request is cacheable when its semantic inputs fully determine
// the answer: the cache key is the canonical tuple
//
//   (model, canonical params, strategy [+ spor options, resolved proviso],
//    split, symmetry)
//
// where "canonical params" means every schema parameter in schema order with
// defaults filled and values normalized (so {"acceptors":"3"} and {} hash
// alike for paxos), and the SPOR cycle proviso is resolved the way the
// Checker resolves it (auto -> stack at t1, visited at tN) since the proviso
// changes the reduced state count. Budgets, thread count and visited mode are
// deliberately NOT keyed: they don't change the verdict, and only truncated
// runs depend on budgets — which is why only *definitive* verdicts (kHolds /
// kViolated) are admitted; a kBudgetExceeded or kResourceLimit result is
// never cached. A reduced parallel run's state count is schedule-dependent,
// so a hit may return a (valid) count from a different schedule than a fresh
// run would have produced; the verdict is identical either way.
//
// Policy. LRU over a byte budget: entries are charged an approximation of
// their resident size (key + protocol-independent result payload + the full
// counterexample trace), and inserting past the budget evicts from the cold
// end. Entries carry the complete CheckResult — including the trace — so a
// hit can serve `--trace` output without touching the engine. Thread-safe
// behind one mutex (probe + copy are far off the exploration hot path).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "check/check.hpp"

namespace mpb::serve {

// The canonical cache key of a request, or nullopt when the request is not
// cacheable (prebuilt protocol, unknown model, or malformed parameter values
// — those fail later in the Checker with a precise error).
[[nodiscard]] std::optional<std::string> cache_key(
    const check::CheckRequest& req);

class ResultCache {
 public:
  explicit ResultCache(std::uint64_t byte_budget) : budget_(byte_budget) {}

  // Probe; a hit refreshes recency and returns a copy of the stored result.
  [[nodiscard]] std::optional<check::CheckResult> get(const std::string& key);

  // Admit a definitive result (no-op for truncated verdicts or when the
  // entry alone exceeds the whole budget); evicts LRU entries to fit.
  void put(const std::string& key, const check::CheckResult& r);

  // SIGHUP reload: shrink (evicting) or grow the budget in place.
  void set_budget(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t entries() const;
  [[nodiscard]] std::uint64_t bytes() const;
  void clear();

 private:
  struct Entry {
    std::string key;
    check::CheckResult result;
    std::uint64_t bytes = 0;
  };

  void evict_to_fit_locked();

  mutable std::mutex mu_;
  std::uint64_t budget_;
  std::uint64_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace mpb::serve
