#include "serve/client.hpp"

#include <unistd.h>

#include "serve/wire.hpp"

namespace mpb::serve {

bool Client::connect_unix(const std::string& path) {
  close();
  fd_ = serve::connect_unix(path);
  if (fd_ < 0) return false;
  // Responses carry whole results — a counterexample trace alone can cross
  // the default request cap — so the client reads under the large cap.
  reader_ = std::make_unique<LineReader>(fd_, kMaxResultLineBytes);
  return true;
}

bool Client::connect_tcp(const std::string& host, std::uint16_t port) {
  close();
  fd_ = serve::connect_tcp(host, port);
  if (fd_ < 0) return false;
  // Responses carry whole results — a counterexample trace alone can cross
  // the default request cap — so the client reads under the large cap.
  reader_ = std::make_unique<LineReader>(fd_, kMaxResultLineBytes);
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

bool Client::send(const util::Json& j) {
  return fd_ >= 0 && send_line(fd_, j);
}

std::optional<util::Json> Client::read(int timeout_ms) {
  if (!reader_) return std::nullopt;
  std::string line;
  if (reader_->read_line(&line, timeout_ms) != LineReader::Status::kLine) {
    return std::nullopt;
  }
  try {
    return util::Json::parse(line);
  } catch (const util::JsonError&) {
    return std::nullopt;
  }
}

}  // namespace mpb::serve
