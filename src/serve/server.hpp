// mpbserved's core: the multi-tenant checking service.
//
// One Server owns the listening sockets (Unix-domain always, TCP loopback
// optionally), a bounded JobQueue of worker threads, the ResultCache and the
// Metrics registry. An accept loop hands each connection to its own handler
// thread; handlers speak the NDJSON protocol (wire.hpp) and never touch the
// engine directly — they only submit to / poll the queue, so a slow or
// hostile client cannot stall a search.
//
// Command set (one JSON object per line; responses carry "ok"):
//   {"cmd":"ping"}                       -> {"ok":true,"type":"pong",
//                                            "version":"mpb-serve-v1"}
//   {"cmd":"submit","request":{...},     -> {"ok":true,"type":"accepted",
//    "detach":false}                         "job":N,"cached":b}, then a
//                                            stream of progress lines and a
//                                            final result line (unless
//                                            detach, which answers accepted
//                                            and leaves the job running)
//   {"cmd":"status","job":N}             -> {"ok":true,"type":"status",...}
//   {"cmd":"attach","job":N}             -> status now + the progress/result
//                                            stream of a running job
//   {"cmd":"cancel","job":N}             -> {"ok":true,"type":"cancelled"}
//   {"cmd":"metrics"}                    -> {"ok":true,"type":"metrics",
//                                            "text":"<Prometheus text>"}
//   {"cmd":"shutdown","drain":true}      -> {"ok":true,"type":"shutting_down"}
// Any error: {"ok":false,"error":"<message>"}.
//
// Streamed lines while attached to a job:
//   {"type":"progress","job":N,"states":...,"events":...,"frontier":...,
//    "seconds":...}                      (rate-limited, ~5/s)
//   {"type":"result","job":N,"state":"done|failed|cancelled", "result":{...}
//    or "error":"..."}
//
// Lifecycle. SIGTERM -> begin_shutdown(drain=true): the listener stops
// accepting, queued and running jobs finish, handlers flush final results,
// then wait() returns. A non-drain shutdown cancels everything in flight
// (running jobs stop at their next guard poll with partial stats). SIGHUP ->
// reload_limits(): re-reads the limits file into the queue's clamp and the
// cache budget without dropping a single connection. Signal handlers
// themselves live in tools/mpbserved.cpp (they only set flags; the main
// thread calls these methods).
//
// Client disconnect cancels the jobs that connection submitted in attached
// (non-detach) mode and had not yet completed — dead clients don't keep
// burning worker time. Detached jobs survive their submitter.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/jobs.hpp"
#include "serve/metrics.hpp"
#include "serve/wire.hpp"

namespace mpb::serve {

struct ServerConfig {
  std::string socket_path;        // Unix-domain listening socket (required)
  std::uint16_t tcp_port = 0;     // optional loopback TCP listener; 0 = off
  unsigned workers = 2;           // concurrent jobs
  std::size_t queue_depth = 64;   // queued (not yet running) jobs
  std::uint64_t cache_bytes = 64ull << 20;
  JobLimits limits;
  std::string limits_path;        // re-read on reload_limits(); "" = none
  std::function<void(std::string_view)> log;  // nullptr = silent
};

// A parsed limits file: `key = value` lines, '#' comments. Keys:
// max_threads, max_states, max_seconds, watchdog_seconds, max_memory_mb,
// cache_mb. Unknown keys or malformed values fail the whole file (the
// previous limits stay in force).
struct LimitsFile {
  JobLimits limits;  // defaults overlaid with the file's assignments
  std::optional<std::uint64_t> cache_bytes;
};
[[nodiscard]] std::optional<LimitsFile> load_limits_file(
    const std::string& path, std::string* error);

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind the sockets and start the accept loop + workers. Returns false
  // (with a logged reason) when a socket cannot be bound.
  [[nodiscard]] bool start();

  // Request shutdown; thread-safe, idempotent, returns immediately. With
  // drain, everything already admitted completes first.
  void begin_shutdown(bool drain);

  // Re-read cfg.limits_path into the queue limits and cache budget.
  void reload_limits();

  // Whether a shutdown was requested (signal loop / `shutdown` command).
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  // Block until shutdown is requested, then tear everything down: stop the
  // listener, join handlers (draining their final writes), close the queue
  // and remove the socket file.
  void wait();

  [[nodiscard]] JobQueue& jobs() noexcept { return *queue_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] std::string metrics_text();

 private:
  void accept_loop();
  void handle_connection(int fd);
  void reap_handlers(bool join_all);
  void logf(std::string_view msg);

  ServerConfig cfg_;
  Metrics metrics_;
  ResultCache cache_;
  std::unique_ptr<JobQueue> queue_;
  std::chrono::steady_clock::time_point started_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> drain_{true};
  std::atomic<bool> stop_handlers_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool torn_down_ = false;  // guarded by shutdown_mu_

  int listen_fd_ = -1;
  int tcp_fd_ = -1;
  std::thread accept_thread_;

  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex handlers_mu_;
  std::vector<Handler> handlers_;
};

}  // namespace mpb::serve
