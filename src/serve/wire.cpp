#include "serve/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mpb::serve {

bool send_line(int fd, const util::Json& j) {
  std::string line = j.dump();
  line += '\n';
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string* out, int timeout_ms) {
  for (;;) {
    // Serve from the buffer first: a prior read may have pulled in several
    // lines at once.
    if (const std::size_t nl = buf_.find('\n'); nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (buf_.size() > max_) return Status::kOversized;
    if (eof_) return buf_.empty() ? Status::kClosed : Status::kError;

    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) return Status::kTimeout;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // report kClosed / kError based on the partial buffer
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

int listen_unix(const std::string& path, int backlog) {
  if (path.empty()) return -1;
  struct sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::unlink(path.c_str());  // a stale socket file from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  struct sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof addr.sun_path) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace mpb::serve
