#include "serve/cache.hpp"

#include "por/spor.hpp"
#include "util/json.hpp"

namespace mpb::serve {

namespace {

// Approximate resident size of an entry. The dominant variable-size pieces
// are the counterexample trace and the searched protocol's structure; the
// fixed 1 KiB floor covers the scalar metadata and map/list bookkeeping.
std::uint64_t entry_bytes(const std::string& key,
                          const check::CheckResult& r) {
  std::uint64_t n = 1024 + key.size();
  n += r.result.counterexample.size() * sizeof(r.result.counterexample[0]);
  n += r.result.violated_property.size();
  n += 64 * (r.protocol.n_procs() + r.protocol.n_transitions());
  return n;
}

}  // namespace

std::optional<std::string> cache_key(const check::CheckRequest& req) {
  // A prebuilt protocol has no name the cache could key on.
  if (req.protocol.has_value()) return std::nullopt;

  const check::ModelInfo* info =
      check::ModelRegistry::global().find(req.model);
  if (info == nullptr) return std::nullopt;

  // Canonicalize params: validate against the schema and re-emit every
  // parameter in schema order with defaults filled, so equivalent requests
  // ({"acceptors":"3"} vs {} for a default of 3) key identically.
  check::ParamMap parsed;
  try {
    parsed = check::parse_params(req.model, info->params, req.params);
  } catch (const check::CheckError&) {
    return std::nullopt;  // the Checker will report the precise error
  }

  std::string key;
  key.reserve(128);
  key += req.model;
  key += '(';
  for (const check::ParamSpec& spec : info->params) {
    key += spec.name;
    key += '=';
    key += std::to_string(spec.type == check::ParamType::kBool
                              ? (parsed.flag(spec.name) ? 1 : 0)
                              : parsed.get(spec.name));
    key += ',';
  }
  key += ")|";
  key += req.strategy;

  if (req.strategy == "spor") {
    // The resolved cycle proviso changes the reduced state count; mirror the
    // Checker's auto resolution (stack sequentially, visited on the pool).
    CycleProviso proviso = req.spor.proviso;
    if (proviso == CycleProviso::kAuto) {
      proviso = req.explore.threads > 1 ? CycleProviso::kVisited
                                        : CycleProviso::kStack;
    }
    key += '[';
    key += to_string(proviso);
    key += ",seed=";
    key += std::to_string(static_cast<int>(req.spor.seed));
    key += req.spor.state_dependent_nes ? ",sdnes" : "";
    key += req.spor.visibility_proviso ? ",visprov" : "";
    key += req.spor.seed_retry ? ",retry" : "";
    key += req.spor.exhaustive_seed ? ",exhaustive" : "";
    key += ']';
  }
  key += '|';
  key += req.split;
  key += req.symmetry ? "|sym" : "|nosym";
  return key;
}

std::optional<check::CheckResult> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->result;
}

void ResultCache::put(const std::string& key, const check::CheckResult& r) {
  const Verdict v = r.verdict();
  if (v != Verdict::kHolds && v != Verdict::kViolated) return;

  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  const std::uint64_t cost = entry_bytes(key, r);
  if (cost > budget_) return;
  lru_.push_front(Entry{key, r, cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  evict_to_fit_locked();
}

void ResultCache::set_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  evict_to_fit_locked();
}

std::uint64_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::uint64_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::evict_to_fit_locked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& cold = lru_.back();
    bytes_ -= cold.bytes;
    index_.erase(cold.key);
    lru_.pop_back();
  }
}

}  // namespace mpb::serve
