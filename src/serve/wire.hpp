// The wire layer: newline-delimited JSON over stream sockets.
//
// Grammar. Every message — request or response — is one JSON object on one
// line, terminated by '\n'. A connection carries a sequence of independent
// commands; the server answers each with one response object, optionally
// followed by a stream of progress/result objects for an attached job (see
// server.hpp for the command set). Inbound lines are capped per reader: the
// server keeps the default kMaxLineBytes for requests (clients have no
// business sending a megabyte of command), while the client library reads
// responses under the larger kMaxResultLineBytes, because a result object
// carrying a long counterexample trace routinely crosses 1 MiB. A line over
// the reader's cap is reported as its own status (kOversized) so callers
// can distinguish "peer is misbehaving" from real socket errors. The
// protocol identifies itself as kProtocolVersion in every `ping` response,
// so clients can detect a mismatched daemon before submitting anything.
//
// This file holds the socket plumbing shared by the server, the client
// library and the tests: connect/listen helpers for Unix-domain and TCP
// sockets, a buffered poll()-based line reader (so reads can time out
// without committing the whole thread), and a full-write send_line that
// never raises SIGPIPE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/json.hpp"

namespace mpb::serve {

inline constexpr std::size_t kMaxLineBytes = 1u << 20;
// Response cap for the client side: big enough for a multi-megabyte trace in
// a result object, small enough to still bound a runaway peer.
inline constexpr std::size_t kMaxResultLineBytes = 64u << 20;
inline constexpr std::string_view kProtocolVersion = "mpb-serve-v1";

// Serialize `j` compactly, append '\n', write it fully (retrying short
// writes, MSG_NOSIGNAL). Returns false on any socket error.
bool send_line(int fd, const util::Json& j);

// Buffered line reader over a socket fd (not owned).
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line_bytes = kMaxLineBytes)
      : fd_(fd), max_(max_line_bytes) {}

  enum class Status { kLine, kTimeout, kClosed, kError, kOversized };

  // Block up to `timeout_ms` for the next complete line (-1 = forever).
  // kLine fills `out` (without the terminator); kClosed means orderly EOF
  // with no buffered partial line; kOversized means the peer exceeded this
  // reader's line cap; kError covers socket errors and EOF mid-line.
  Status read_line(std::string* out, int timeout_ms);

 private:
  int fd_;
  std::size_t max_;
  std::string buf_;
  bool eof_ = false;
};

// Socket constructors; every function returns the fd or -1 on error (with
// errno left for the caller's message).
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 16);
[[nodiscard]] int connect_unix(const std::string& path);
[[nodiscard]] int listen_tcp(std::uint16_t port, int backlog = 16);
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

}  // namespace mpb::serve
