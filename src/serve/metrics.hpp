// Service metrics in Prometheus text exposition format.
//
// The daemon's components bump the monotone counters below as events happen
// (submit, reject, finish, cache probe); the point-in-time gauges (queue
// depth, running jobs, cache occupancy, per-job throughput) are *sampled* at
// render time from the live queue and cache, so they can never drift from
// the structures they describe. render_prometheus() is the single place the
// metric names live — the `metrics` wire command and any future HTTP
// /metrics endpoint both serve its output verbatim.
//
// Inventory (all prefixed mpb_):
//   counters  jobs_submitted_total, jobs_rejected_total, jobs_failed_total,
//             jobs_cancelled_total, jobs_completed_total{verdict=...},
//             cache_hits_total, cache_misses_total,
//             queue_latency_seconds_{sum,count} (a Prometheus summary pair:
//             submit -> start latency over all started jobs)
//   gauges    jobs_queued, jobs_running, cache_entries, cache_bytes,
//             job_states_per_sec{job="N"} and job_sleep_blocked{job="N"}
//             (one series per *running* job — cardinality is bounded by the
//             worker count),
//             process_peak_rss_bytes, uptime_seconds
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mpb::serve {

class Metrics {
 public:
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_rejected{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};
  // Completed jobs by verdict (definitive and truncated alike).
  std::atomic<std::uint64_t> jobs_done_holds{0};
  std::atomic<std::uint64_t> jobs_done_violated{0};
  std::atomic<std::uint64_t> jobs_done_limit{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};

  void add_queue_latency(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    latency_sum_ += seconds;
    ++latency_count_;
  }

  void latency(double* sum, std::uint64_t* count) const {
    std::lock_guard<std::mutex> lock(mu_);
    *sum = latency_sum_;
    *count = latency_count_;
  }

 private:
  mutable std::mutex mu_;
  double latency_sum_ = 0.0;
  std::uint64_t latency_count_ = 0;
};

// One running job's live throughput, sampled from its progress snapshot.
struct RunningJobSample {
  std::uint64_t id = 0;
  double states_per_sec = 0.0;
  // Sleep-set skips so far (dpor jobs; 0 for other strategies).
  std::uint64_t sleep_blocked = 0;
  // Cross-rank forwarded states so far (distributed jobs; 0 otherwise).
  std::uint64_t forwarded_states = 0;
};

// The point-in-time state render_prometheus reports as gauges.
struct GaugeSample {
  std::uint64_t jobs_queued = 0;
  std::uint64_t jobs_running = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::vector<RunningJobSample> running;
  double uptime_seconds = 0.0;
};

[[nodiscard]] std::string render_prometheus(const Metrics& m,
                                            const GaugeSample& g);

}  // namespace mpb::serve
