file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_refinement_demo.dir/bench/fig4_refinement_demo.cpp.o"
  "CMakeFiles/bench_fig4_refinement_demo.dir/bench/fig4_refinement_demo.cpp.o.d"
  "bench_fig4_refinement_demo"
  "bench_fig4_refinement_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_refinement_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
