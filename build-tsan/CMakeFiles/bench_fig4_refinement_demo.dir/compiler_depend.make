# Empty compiler generated dependencies file for bench_fig4_refinement_demo.
# This may be replaced when dependencies are built.
