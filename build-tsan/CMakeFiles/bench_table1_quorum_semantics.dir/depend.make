# Empty dependencies file for bench_table1_quorum_semantics.
# This may be replaced when dependencies are built.
