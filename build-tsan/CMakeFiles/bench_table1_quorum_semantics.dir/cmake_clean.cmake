file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_quorum_semantics.dir/bench/table1_quorum_semantics.cpp.o"
  "CMakeFiles/bench_table1_quorum_semantics.dir/bench/table1_quorum_semantics.cpp.o.d"
  "bench_table1_quorum_semantics"
  "bench_table1_quorum_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_quorum_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
