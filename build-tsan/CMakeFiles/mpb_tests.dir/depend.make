# Empty dependencies file for mpb_tests.
# This may be replaced when dependencies are built.
