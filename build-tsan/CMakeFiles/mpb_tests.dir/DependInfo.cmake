
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assertion_test.cpp" "CMakeFiles/mpb_tests.dir/tests/assertion_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/assertion_test.cpp.o.d"
  "/root/repo/tests/builder_test.cpp" "CMakeFiles/mpb_tests.dir/tests/builder_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/builder_test.cpp.o.d"
  "/root/repo/tests/collector_test.cpp" "CMakeFiles/mpb_tests.dir/tests/collector_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/collector_test.cpp.o.d"
  "/root/repo/tests/dpor_test.cpp" "CMakeFiles/mpb_tests.dir/tests/dpor_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/dpor_test.cpp.o.d"
  "/root/repo/tests/echo_test.cpp" "CMakeFiles/mpb_tests.dir/tests/echo_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/echo_test.cpp.o.d"
  "/root/repo/tests/enabled_test.cpp" "CMakeFiles/mpb_tests.dir/tests/enabled_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/enabled_test.cpp.o.d"
  "/root/repo/tests/execute_test.cpp" "CMakeFiles/mpb_tests.dir/tests/execute_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/execute_test.cpp.o.d"
  "/root/repo/tests/explorer_test.cpp" "CMakeFiles/mpb_tests.dir/tests/explorer_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/explorer_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "CMakeFiles/mpb_tests.dir/tests/harness_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/harness_test.cpp.o.d"
  "/root/repo/tests/independence_test.cpp" "CMakeFiles/mpb_tests.dir/tests/independence_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/independence_test.cpp.o.d"
  "/root/repo/tests/message_state_test.cpp" "CMakeFiles/mpb_tests.dir/tests/message_state_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/message_state_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "CMakeFiles/mpb_tests.dir/tests/parallel_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/parallel_test.cpp.o.d"
  "/root/repo/tests/paxos_test.cpp" "CMakeFiles/mpb_tests.dir/tests/paxos_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/paxos_test.cpp.o.d"
  "/root/repo/tests/refine_test.cpp" "CMakeFiles/mpb_tests.dir/tests/refine_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/refine_test.cpp.o.d"
  "/root/repo/tests/soundness_test.cpp" "CMakeFiles/mpb_tests.dir/tests/soundness_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/soundness_test.cpp.o.d"
  "/root/repo/tests/spor_test.cpp" "CMakeFiles/mpb_tests.dir/tests/spor_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/spor_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "CMakeFiles/mpb_tests.dir/tests/storage_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/storage_test.cpp.o.d"
  "/root/repo/tests/sweep_test.cpp" "CMakeFiles/mpb_tests.dir/tests/sweep_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/sweep_test.cpp.o.d"
  "/root/repo/tests/symmetry_test.cpp" "CMakeFiles/mpb_tests.dir/tests/symmetry_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/symmetry_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "CMakeFiles/mpb_tests.dir/tests/trace_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "CMakeFiles/mpb_tests.dir/tests/util_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/util_test.cpp.o.d"
  "/root/repo/tests/visited_test.cpp" "CMakeFiles/mpb_tests.dir/tests/visited_test.cpp.o" "gcc" "CMakeFiles/mpb_tests.dir/tests/visited_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/mpb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
