file(REMOVE_RECURSE
  "CMakeFiles/mpbcheck.dir/tools/mpbcheck.cpp.o"
  "CMakeFiles/mpbcheck.dir/tools/mpbcheck.cpp.o.d"
  "mpbcheck"
  "mpbcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpbcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
