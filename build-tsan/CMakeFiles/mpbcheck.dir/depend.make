# Empty dependencies file for mpbcheck.
# This may be replaced when dependencies are built.
