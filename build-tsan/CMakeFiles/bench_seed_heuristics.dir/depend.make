# Empty dependencies file for bench_seed_heuristics.
# This may be replaced when dependencies are built.
