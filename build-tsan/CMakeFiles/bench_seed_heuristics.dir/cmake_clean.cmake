file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_heuristics.dir/bench/seed_heuristics.cpp.o"
  "CMakeFiles/bench_seed_heuristics.dir/bench/seed_heuristics.cpp.o.d"
  "bench_seed_heuristics"
  "bench_seed_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
