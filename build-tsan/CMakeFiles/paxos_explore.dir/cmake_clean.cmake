file(REMOVE_RECURSE
  "CMakeFiles/paxos_explore.dir/examples/paxos_explore.cpp.o"
  "CMakeFiles/paxos_explore.dir/examples/paxos_explore.cpp.o.d"
  "paxos_explore"
  "paxos_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
