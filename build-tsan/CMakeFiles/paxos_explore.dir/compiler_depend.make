# Empty compiler generated dependencies file for paxos_explore.
# This may be replaced when dependencies are built.
