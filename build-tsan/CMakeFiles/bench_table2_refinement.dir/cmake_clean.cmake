file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_refinement.dir/bench/table2_refinement.cpp.o"
  "CMakeFiles/bench_table2_refinement.dir/bench/table2_refinement.cpp.o.d"
  "bench_table2_refinement"
  "bench_table2_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
