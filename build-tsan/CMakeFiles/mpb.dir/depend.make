# Empty dependencies file for mpb.
# This may be replaced when dependencies are built.
