file(REMOVE_RECURSE
  "libmpb.a"
)
