
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/enabled.cpp" "CMakeFiles/mpb.dir/src/core/enabled.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/enabled.cpp.o.d"
  "/root/repo/src/core/execute.cpp" "CMakeFiles/mpb.dir/src/core/execute.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/execute.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "CMakeFiles/mpb.dir/src/core/explorer.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/explorer.cpp.o.d"
  "/root/repo/src/core/message.cpp" "CMakeFiles/mpb.dir/src/core/message.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/message.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "CMakeFiles/mpb.dir/src/core/protocol.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/protocol.cpp.o.d"
  "/root/repo/src/core/state.cpp" "CMakeFiles/mpb.dir/src/core/state.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/state.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "CMakeFiles/mpb.dir/src/core/trace.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/trace.cpp.o.d"
  "/root/repo/src/core/visited.cpp" "CMakeFiles/mpb.dir/src/core/visited.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/core/visited.cpp.o.d"
  "/root/repo/src/harness/bench_json.cpp" "CMakeFiles/mpb.dir/src/harness/bench_json.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/harness/bench_json.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "CMakeFiles/mpb.dir/src/harness/runner.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/harness/runner.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "CMakeFiles/mpb.dir/src/harness/table.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/harness/table.cpp.o.d"
  "/root/repo/src/mp/builder.cpp" "CMakeFiles/mpb.dir/src/mp/builder.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/mp/builder.cpp.o.d"
  "/root/repo/src/por/dpor.cpp" "CMakeFiles/mpb.dir/src/por/dpor.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/por/dpor.cpp.o.d"
  "/root/repo/src/por/independence.cpp" "CMakeFiles/mpb.dir/src/por/independence.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/por/independence.cpp.o.d"
  "/root/repo/src/por/spor.cpp" "CMakeFiles/mpb.dir/src/por/spor.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/por/spor.cpp.o.d"
  "/root/repo/src/por/symmetry.cpp" "CMakeFiles/mpb.dir/src/por/symmetry.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/por/symmetry.cpp.o.d"
  "/root/repo/src/protocols/collector/collector.cpp" "CMakeFiles/mpb.dir/src/protocols/collector/collector.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/protocols/collector/collector.cpp.o.d"
  "/root/repo/src/protocols/echo/echo.cpp" "CMakeFiles/mpb.dir/src/protocols/echo/echo.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/protocols/echo/echo.cpp.o.d"
  "/root/repo/src/protocols/paxos/paxos.cpp" "CMakeFiles/mpb.dir/src/protocols/paxos/paxos.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/protocols/paxos/paxos.cpp.o.d"
  "/root/repo/src/protocols/storage/storage.cpp" "CMakeFiles/mpb.dir/src/protocols/storage/storage.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/protocols/storage/storage.cpp.o.d"
  "/root/repo/src/refine/refine.cpp" "CMakeFiles/mpb.dir/src/refine/refine.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/refine/refine.cpp.o.d"
  "/root/repo/src/util/combinatorics.cpp" "CMakeFiles/mpb.dir/src/util/combinatorics.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/util/combinatorics.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "CMakeFiles/mpb.dir/src/util/hash.cpp.o" "gcc" "CMakeFiles/mpb.dir/src/util/hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
