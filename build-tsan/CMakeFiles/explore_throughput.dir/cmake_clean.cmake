file(REMOVE_RECURSE
  "CMakeFiles/explore_throughput.dir/bench/explore_throughput.cpp.o"
  "CMakeFiles/explore_throughput.dir/bench/explore_throughput.cpp.o.d"
  "explore_throughput"
  "explore_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
