# Empty dependencies file for explore_throughput.
# This may be replaced when dependencies are built.
