# Empty dependencies file for bench_symmetry_combination.
# This may be replaced when dependencies are built.
