file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetry_combination.dir/bench/symmetry_combination.cpp.o"
  "CMakeFiles/bench_symmetry_combination.dir/bench/symmetry_combination.cpp.o.d"
  "bench_symmetry_combination"
  "bench_symmetry_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetry_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
