# Empty compiler generated dependencies file for bench_state_inflation.
# This may be replaced when dependencies are built.
