file(REMOVE_RECURSE
  "CMakeFiles/bench_state_inflation.dir/bench/state_inflation.cpp.o"
  "CMakeFiles/bench_state_inflation.dir/bench/state_inflation.cpp.o.d"
  "bench_state_inflation"
  "bench_state_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
