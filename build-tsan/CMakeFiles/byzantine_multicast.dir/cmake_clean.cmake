file(REMOVE_RECURSE
  "CMakeFiles/byzantine_multicast.dir/examples/byzantine_multicast.cpp.o"
  "CMakeFiles/byzantine_multicast.dir/examples/byzantine_multicast.cpp.o.d"
  "byzantine_multicast"
  "byzantine_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
