# Empty compiler generated dependencies file for byzantine_multicast.
# This may be replaced when dependencies are built.
