#!/usr/bin/env python3
"""Compare two BENCH_explore.json files: throughput regressions AND parallel
scaling (tN vs t1 speedup) regressions.

Usage:
    bench_compare.py NEW.json [OLD.json] [--threshold 0.15]
                     [--scaling-threshold 0.25] [--reduction-threshold 0.25]
                     [--rss-threshold 0.30]

NEW.json is the freshly produced bench file (see the `bench-json` cmake
target, bench/explore_throughput, or tools/run_bench.sh).  Without OLD.json
the script pretty-prints NEW.json — per-record throughput plus a per-workload
parallel-speedup table — so the first PR in a trajectory can bootstrap the
baseline with

    cp build/BENCH_explore.json bench/baseline.json

When OLD.json is given, two checks run and either can fail the script:

  * throughput: every record present in both files is compared on
    states/sec; a drop larger than --threshold (default 15%) is a
    regression;
  * scaling: every (workload, strategy, visited, N) speedup — states/sec at
    tN divided by states/sec at t1 of the same record group — is compared;
    an absolute drop larger than --scaling-threshold (default 0.25, i.e. a
    quarter of one core) is a scaling regression.  This is what catches "t8
    still verifies but no longer scales" even when raw throughput moved
    within the noise threshold.

Reduced (spor/dpor) records additionally gate on *reduction quality*: a
relative increase in states_stored, proviso_fallbacks, scc_reexpansions or
events_executed — or a relative *drop* in sleep_blocked, the dpor sleep-set
skip counter — beyond --reduction-threshold (default 25%, with a small
absolute floor so tiny counters don't flap) fails the script just like a
throughput regression — a POR change that silently loses reduction is caught
even when raw throughput is unchanged.  Counters missing from an old
baseline are skipped.  On a single-core host the scaling gate is skipped
(and says so): tN/t1 there measures time-slicing, not the scaling core.

--rss-threshold (opt-in: off by default because peak_rss_kb is a
process-lifetime high-water mark, so multi-workload sweeps only compare
meaningfully like-positioned record against like-positioned record) gates
relative peak_rss_kb growth per series the same way --threshold gates
throughput.  Unlike the reduction counters, a record without a usable RSS
sample is an error, not a skip: gating memory against a file that never
measured it would pass vacuously, so the script fails and names the record.

Distributed cells (<workload>/dist/rN) get their own absolute gate: the
wall-clock of dist/r1 — one rank, no peers, pure partition overhead — must
stay within --dist-overhead-threshold (default 1.15x) of the same
workload's full/t1 cell *in the new file*.  The forwarding-overhead columns
(forwarded_states, avg batch size, wire_bytes) are printed for every dist
cell.  On a single-core host the gate is skipped with a printed marker,
like the scaling gate: the extra launcher process time-slices the rank.
"""

import argparse
import json
import os
import re
import sys


def key_of(record):
    # Records produced via harness::run share the protocol name across
    # strategies/modes, so the comparison key includes every knob.
    return (f"{record['name']}|{record.get('strategy', '?')}|"
            f"{record.get('visited', '?')}|t{record.get('threads', 1)}")


def group_of(record):
    """Record key minus the thread count: the unit speedups are computed in."""
    base = re.sub(r"/t\d+$", "", record["name"])
    strategy = record.get("strategy", "?")
    if not base.endswith("/" + strategy):  # harness records lack the suffix
        base += "|" + strategy
    return f"{base}|{record.get('visited', '?')}"


# Keys every comparison/pretty-print path reads; validated at load time so a
# truncated or hand-edited file fails with a pointed message instead of a
# KeyError traceback halfway through the diff.
REQUIRED_KEYS = ("name", "verdict", "states_stored", "states_per_sec",
                 "events_per_sec", "peak_rss_kb")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "mpb-bench-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    records = data.get("records")
    if not isinstance(records, list):
        raise SystemExit(f"{path}: no 'records' array")
    out = {}
    for i, r in enumerate(records):
        missing = [k for k in REQUIRED_KEYS if k not in r]
        if missing:
            raise SystemExit(f"{path}: record {i} "
                             f"({r.get('name', '<unnamed>')}) is missing "
                             f"key(s): {', '.join(missing)}")
        k = key_of(r)
        if k in out:
            print(f"warning: {path}: duplicate record {k}; keeping the last",
                  file=sys.stderr)
        out[k] = r
    return out


def speedups(records):
    """{(group, threads): tN states/sec / t1 states/sec} for every group with
    a t1 record."""
    t1 = {group_of(r): r["states_per_sec"]
          for r in records.values() if r.get("threads", 1) == 1}
    out = {}
    for r in records.values():
        n = r.get("threads", 1)
        g = group_of(r)
        base = t1.get(g, 0.0)
        if n > 1 and base > 0:
            out[(g, n)] = r["states_per_sec"] / base
    return out


def fmt_rate(rate):
    return f"{rate:,.0f}/s"


# (metric, absolute floor below which deltas are noise, bad direction).
# "up" metrics regress when they grow (more states / fallbacks / executed
# transitions = less reduction); "down" metrics regress when they shrink
# (fewer sleep-set skips = the dpor reduction re-explores more).
REDUCTION_METRICS = (("states_stored", 64, "up"),
                     ("proviso_fallbacks", 16, "up"),
                     ("scc_reexpansions", 16, "up"),
                     ("events_executed", 64, "up"),
                     ("sleep_blocked", 16, "down"))


def reduction_regressions(new, old, threshold):
    """Bad-direction relative moves of the reduction-quality counters of
    reduced records present in both files;
    [(key, metric, old, new, delta), ...]."""
    out = []
    for key, r in new.items():
        if r.get("strategy") == "full" or key not in old:
            continue
        o = old[key]
        for metric, floor, direction in REDUCTION_METRICS:
            if metric not in r or metric not in o:
                continue  # old baselines predate the counter: skip
            nv, ov = r[metric], o[metric]
            if max(nv, ov) < floor:
                continue
            base = ov if ov > 0 else floor
            delta = (nv - ov) / base
            if direction == "down":
                delta = -delta
            if delta > threshold:
                out.append((key, metric, ov, nv, delta))
    return out


def rss_regressions(new, old, threshold):
    """Relative peak_rss_kb increases of records present in both files.
    Returns (regressions, unusable): regressions are
    [(key, old_kb, new_kb, delta), ...]; unusable lists records where either
    side has no positive RSS sample — those fail the gate outright."""
    out, unusable = [], []
    for key, r in new.items():
        if key not in old:
            continue
        nv = r.get("peak_rss_kb", 0)
        ov = old[key].get("peak_rss_kb", 0)
        if nv <= 0 or ov <= 0:
            unusable.append((key, ov, nv))
            continue
        delta = (nv - ov) / ov
        if delta > threshold:
            out.append((key, ov, nv, delta))
    return out, unusable


def dist_overhead(records):
    """[(workload, ratio)] — dist/r1 wall-clock over full/t1 wall-clock for
    every workload carrying both cells in the same file."""
    full_t1 = {}
    for r in records.values():
        m = re.match(r"^(.*)/full/t1$", r["name"])
        if m and r.get("threads", 1) == 1:
            full_t1[m.group(1)] = r.get("seconds", 0.0)
    out = []
    for r in records.values():
        m = re.match(r"^(.*)/dist/r1$", r["name"])
        if not m:
            continue
        base = full_t1.get(m.group(1), 0.0)
        if base > 0 and r.get("seconds", 0.0) > 0:
            out.append((m.group(1), r["seconds"] / base))
    return sorted(out)


def print_dist_table(records):
    """Forwarding-overhead columns for every <workload>/dist/rN cell."""
    rows = sorted((r for r in records.values() if "/dist/r" in r["name"]),
                  key=lambda r: r["name"])
    if not rows:
        return
    width = max(len(r["name"]) for r in rows)
    print("\ndistributed cells (forwarding overhead):")
    print(f"{'cell':<{width}}  {'states':>12}  {'seconds':>8}  "
          f"{'forwarded':>10}  {'avg_batch':>9}  {'wire_bytes':>13}")
    for r in rows:
        fwd = r.get("forwarded_states", 0)
        batches = r.get("forward_batches", 0)
        avg = fwd // batches if batches else 0
        print(f"{r['name']:<{width}}  {r['states_stored']:>12,}  "
              f"{r.get('seconds', 0.0):>8.2f}  {fwd:>10,}  {avg:>9,}  "
              f"{r.get('wire_bytes', 0):>13,}")


def print_speedup_table(new_speedups, old_speedups=None, threshold=None):
    """Render the per-workload scaling table; returns the list of scaling
    regressions (empty when old_speedups is None)."""
    if not new_speedups:
        return []
    regressions = []
    width = max(len(g) for g, _ in new_speedups)
    print(f"\nparallel speedup (tN states/s over t1 states/s):")
    header = f"{'workload':<{width}}"
    threads = sorted({n for _, n in new_speedups})
    for n in threads:
        header += f"  {'t' + str(n):>14}"
    print(header)
    for g in sorted({g for g, _ in new_speedups}):
        line = f"{g:<{width}}"
        for n in threads:
            s = new_speedups.get((g, n))
            if s is None:
                line += f"  {'-':>14}"
                continue
            cell = f"{s:.2f}x"
            if old_speedups is not None and (g, n) in old_speedups:
                o = old_speedups[(g, n)]
                delta = s - o
                cell += f" ({delta:+.2f})"
                if threshold is not None and delta < -threshold:
                    regressions.append((g, n, o, s))
                    cell += " <<"
            line += f"  {cell:>14}"
        print(line)
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("new", help="fresh BENCH_explore.json")
    ap.add_argument("old", nargs="?", help="baseline BENCH_explore.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional states/sec drop (default 0.15)")
    ap.add_argument("--scaling-threshold", type=float, default=0.25,
                    help="allowed absolute tN/t1 speedup drop (default 0.25)")
    ap.add_argument("--reduction-threshold", type=float, default=0.25,
                    help="allowed relative increase of states_stored / "
                         "proviso_fallbacks / scc_reexpansions on reduced "
                         "records (default 0.25)")
    ap.add_argument("--rss-threshold", type=float, default=None,
                    help="gate relative peak_rss_kb growth per series "
                         "(off unless given; records without a positive "
                         "RSS sample fail the gate)")
    ap.add_argument("--dist-overhead-threshold", type=float, default=1.15,
                    help="allowed dist/r1 over full/t1 wall-clock ratio "
                         "(default 1.15; skipped on a single-core host)")
    args = ap.parse_args()

    new = load(args.new)
    width = max((len(n) for n in new), default=10)

    if args.old is None:
        print(f"{'workload':<{width}}  {'verdict':>8}  {'states':>12}  "
              f"{'states/s':>14}  {'events/s':>14}  {'fallbk':>8}  "
              f"{'sccre':>6}  {'rss_kb':>10}")
        for name, r in new.items():
            print(f"{name:<{width}}  {r['verdict']:>8}  {r['states_stored']:>12,}  "
                  f"{fmt_rate(r['states_per_sec']):>14}  "
                  f"{fmt_rate(r['events_per_sec']):>14}  "
                  f"{r.get('proviso_fallbacks', 0):>8,}  "
                  f"{r.get('scc_reexpansions', 0):>6,}  {r['peak_rss_kb']:>10,}")
        print_speedup_table(speedups(new))
        print_dist_table(new)
        return 0

    old = load(args.old)

    # A series present on one side only means the two files don't measure the
    # same suite — a renamed workload, a stale baseline, or a truncated run.
    # Diffing what remains would silently hide the drift, so say exactly what
    # is missing on which side and fail.
    only_old = sorted(k for k in old if k not in new)
    only_new = sorted(k for k in new if k not in old)
    if only_old or only_new:
        for k in only_old:
            print(f"series missing from {args.new}: {k} "
                  f"(present in baseline {args.old})", file=sys.stderr)
        for k in only_new:
            print(f"series missing from baseline {args.old}: {k} "
                  f"(present in {args.new})", file=sys.stderr)
        print(f"\nthe two files measure different series "
              f"({len(only_old)} baseline-only, {len(only_new)} new-only); "
              f"regenerate both from the same suite, or refresh the baseline "
              f"with: cp {args.new} {args.old}", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'workload':<{width}}  {'old states/s':>14}  {'new states/s':>14}  {'delta':>8}")
    for name, r in new.items():
        o, n = old[name]["states_per_sec"], r["states_per_sec"]
        delta = (n - o) / o if o > 0 else 0.0
        marker = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            marker = "  << REGRESSION"
        print(f"{name:<{width}}  {fmt_rate(o):>14}  {fmt_rate(n):>14}  "
              f"{delta:>+7.1%}{marker}")

    # On a single-core host every tN cell time-slices one core, so tN/t1
    # speedups measure scheduler noise, not the scaling core. Print the table
    # for eyeballs but never fail on it — and say so explicitly, so a clean
    # CI log on such a host can't be mistaken for a passed scaling gate.
    single_core = (os.cpu_count() or 1) <= 1
    scaling_regressions = print_speedup_table(
        speedups(new), speedups(old),
        None if single_core else args.scaling_threshold)
    if single_core:
        print("single-core host, scaling gate skipped")
    red_regressions = reduction_regressions(new, old, args.reduction_threshold)

    # The dist overhead gate is absolute within the new file: dist/r1 is the
    # same search as full/t1 plus the mesh machinery, so their wall-clock
    # ratio is the partition overhead whatever the host.
    print_dist_table(new)
    dist_regressions = []
    dist_ratios = dist_overhead(new)
    if dist_ratios:
        if single_core:
            print("single-core host, dist overhead gate skipped")
        else:
            for wl, ratio in dist_ratios:
                marker = ""
                if ratio > args.dist_overhead_threshold:
                    dist_regressions.append((wl, ratio))
                    marker = "  << OVERHEAD"
                print(f"dist overhead: {wl} dist/r1 = {ratio:.2f}x "
                      f"full/t1{marker}")

    mem_regressions, mem_unusable = ([], [])
    if args.rss_threshold is not None:
        mem_regressions, mem_unusable = rss_regressions(
            new, old, args.rss_threshold)

    failed = False
    if regressions:
        print(f"\n{len(regressions)} throughput regression(s) beyond "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        failed = True
    if scaling_regressions:
        for g, n, o, s in scaling_regressions:
            print(f"scaling regression: {g} t{n} speedup {o:.2f}x -> {s:.2f}x",
                  file=sys.stderr)
        print(f"{len(scaling_regressions)} scaling regression(s) beyond "
              f"-{args.scaling_threshold:.2f} absolute speedup",
              file=sys.stderr)
        failed = True
    if red_regressions:
        for key, metric, ov, nv, delta in red_regressions:
            print(f"reduction regression: {key} {metric} {ov:,} -> {nv:,} "
                  f"({delta:+.0%})", file=sys.stderr)
        print(f"{len(red_regressions)} reduction regression(s) beyond "
              f"+{args.reduction_threshold:.0%}", file=sys.stderr)
        failed = True
    if mem_unusable:
        for key, ov, nv in mem_unusable:
            print(f"cannot gate memory: {key} has no usable peak_rss_kb "
                  f"(baseline={ov}, new={nv}); the producing bench predates "
                  f"RSS recording — regenerate both files from the current "
                  f"suite before using --rss-threshold", file=sys.stderr)
        failed = True
    if mem_regressions:
        for key, ov, nv, delta in mem_regressions:
            print(f"memory regression: {key} peak_rss_kb {ov:,} -> {nv:,} "
                  f"({delta:+.0%})", file=sys.stderr)
        print(f"{len(mem_regressions)} memory regression(s) beyond "
              f"+{args.rss_threshold:.0%}", file=sys.stderr)
        failed = True
    if dist_regressions:
        for wl, ratio in dist_regressions:
            print(f"dist overhead regression: {wl} dist/r1 runs {ratio:.2f}x "
                  f"the full/t1 wall-clock (limit "
                  f"{args.dist_overhead_threshold:.2f}x)", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("\nno regressions beyond thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
