#!/usr/bin/env python3
"""Compare two BENCH_explore.json files and flag throughput regressions.

Usage:
    bench_compare.py NEW.json [OLD.json] [--threshold 0.15]

NEW.json is the freshly produced bench file (see the `bench-json` cmake
target or bench/explore_throughput).  When OLD.json is given, every record
present in both files is compared on states/sec; a drop larger than
--threshold (default 15%) is a regression and the script exits 1.  Without
OLD.json the script just pretty-prints NEW.json, so the first PR in a
trajectory can bootstrap the baseline with

    cp build/BENCH_explore.json bench/baseline.json
"""

import argparse
import json
import sys


def key_of(record):
    # Records produced via harness::run share the protocol name across
    # strategies/modes, so the comparison key includes every knob.
    return (f"{record['name']}|{record.get('strategy', '?')}|"
            f"{record.get('visited', '?')}|t{record.get('threads', 1)}")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "mpb-bench-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    out = {}
    for r in data["records"]:
        k = key_of(r)
        if k in out:
            print(f"warning: {path}: duplicate record {k}; keeping the last",
                  file=sys.stderr)
        out[k] = r
    return out


def fmt_rate(rate):
    return f"{rate:,.0f}/s"


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("new", help="fresh BENCH_explore.json")
    ap.add_argument("old", nargs="?", help="baseline BENCH_explore.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional states/sec drop (default 0.15)")
    args = ap.parse_args()

    new = load(args.new)
    width = max((len(n) for n in new), default=10)

    if args.old is None:
        print(f"{'workload':<{width}}  {'verdict':>8}  {'states':>12}  "
              f"{'states/s':>14}  {'events/s':>14}  {'rss_kb':>10}")
        for name, r in new.items():
            print(f"{name:<{width}}  {r['verdict']:>8}  {r['states_stored']:>12,}  "
                  f"{fmt_rate(r['states_per_sec']):>14}  "
                  f"{fmt_rate(r['events_per_sec']):>14}  {r['peak_rss_kb']:>10,}")
        return 0

    old = load(args.old)
    regressions = []
    print(f"{'workload':<{width}}  {'old states/s':>14}  {'new states/s':>14}  {'delta':>8}")
    for name, r in new.items():
        if name not in old:
            print(f"{name:<{width}}  {'(new)':>14}  {fmt_rate(r['states_per_sec']):>14}")
            continue
        o, n = old[name]["states_per_sec"], r["states_per_sec"]
        delta = (n - o) / o if o > 0 else 0.0
        marker = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            marker = "  << REGRESSION"
        print(f"{name:<{width}}  {fmt_rate(o):>14}  {fmt_rate(n):>14}  "
              f"{delta:>+7.1%}{marker}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
