#!/usr/bin/env bash
# Nightly CI lane: everything too slow for the per-commit lanes.
#
#   1. the default test suite (all labels, including the 200-seed
#      mpbfuzz_smoke that stays in the per-commit `fuzz` label),
#   2. a long time-boxed differential fuzz campaign via tools/run_fuzz.sh
#      (default 30 minutes vs. the script's usual 5 — override with
#      MPB_FUZZ_SECONDS; the lane matrix covers dpor t1 / t1-nosleep / tN
#      alongside full and spor),
#   3. a bounded spill-tier soak: a ~1.1M-state search under the collapse
#      visited mode with an 8 MiB resident budget over an mmap-backed
#      arena, pinned to the committed state count (override the model size
#      with MPB_SOAK_PARAMS / expected count with MPB_SOAK_STATES),
#   4. the distributed smoke lane (tools/run_dist.sh): the multi-process
#      driver's state-count pins at 1/2/4 ranks under full and spor-scc,
#   5. the TSan lane (parallel|engine|serve|memory|dist),
#   6. the ASan lane (unit|soundness|fuzz|serve|memory|dist).
#
# Usage: tools/run_nightly.sh
# Exit status: non-zero as soon as any stage fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== nightly: default suite =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default

echo "== nightly: long fuzz campaign =="
MPB_FUZZ_SECONDS="${MPB_FUZZ_SECONDS:-1800}" tools/run_fuzz.sh

echo "== nightly: spill-tier soak =="
# A long collapse+spill run that actually cycles chunks through the
# madvise-out/fault-back path for minutes, which the unit tests are too
# short to exercise. The run must still land exactly on the committed
# state count — spilling is storage policy, never search behaviour.
spill_dir="$(mktemp -d)"
trap 'rm -rf "$spill_dir"' EXIT
soak_states="${MPB_SOAK_STATES:-1119285}"
# shellcheck disable=SC2086  # MPB_SOAK_PARAMS is a flag list on purpose
soak_out="$(build/mpbcheck paxos ${MPB_SOAK_PARAMS:---proposers 3 --acceptors 3 --learners 1} \
    --strategy full --visited collapse \
    --spill-dir "$spill_dir" --spill-mb 8 --json)"
echo "$soak_out"
echo "$soak_out" | grep -q "\"states_stored\":[[:space:]]*${soak_states}\b" || {
  echo "run_nightly: spill soak missed the pinned state count (${soak_states})" >&2
  exit 1
}

echo "== nightly: distributed smoke lane =="
tools/run_dist.sh

echo "== nightly: TSan lane =="
tools/run_tsan.sh

echo "== nightly: ASan lane =="
tools/run_asan.sh

echo "run_nightly: all stages clean"
