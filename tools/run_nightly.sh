#!/usr/bin/env bash
# Nightly CI lane: everything too slow for the per-commit lanes.
#
#   1. the default test suite (all labels, including the 200-seed
#      mpbfuzz_smoke that stays in the per-commit `fuzz` label),
#   2. a long time-boxed differential fuzz campaign via tools/run_fuzz.sh
#      (default 30 minutes vs. the script's usual 5 — override with
#      MPB_FUZZ_SECONDS),
#   3. the TSan lane (parallel|engine|serve),
#   4. the ASan lane (unit|soundness|fuzz|serve).
#
# Usage: tools/run_nightly.sh
# Exit status: non-zero as soon as any stage fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== nightly: default suite =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default

echo "== nightly: long fuzz campaign =="
MPB_FUZZ_SECONDS="${MPB_FUZZ_SECONDS:-1800}" tools/run_fuzz.sh

echo "== nightly: TSan lane =="
tools/run_tsan.sh

echo "== nightly: ASan lane =="
tools/run_asan.sh

echo "run_nightly: all stages clean"
