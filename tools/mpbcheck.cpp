// mpbcheck — command-line front end to every built-in protocol, search
// strategy, refinement and reduction in the library.
//
// Usage:
//   mpbcheck <protocol> [options]
//
// Protocols and their setting options:
//   paxos      --proposers N --acceptors N --learners N [--faulty]
//   echo       --honest-receivers N --honest-initiators N
//              --byz-receivers N --byz-initiators N [--tolerance N]
//   storage    --bases N --readers N --writes N [--wrong-regularity]
//   collector  --senders N --quorum N [--noise N]
//
// Common options:
//   --single-message          use the counting model instead of quorum
//   --threads N               worker threads (full stateful strategy only)
//   --visited exact|fingerprint|interned  visited-set storage (default env/fingerprint)
//   --strategy full|spor|dpor|stateless   (default spor)
//   --split none|reply|quorum|combined    (default none)
//   --seed opposite|transaction|first     (default opposite)
//   --symmetry                enable role-based symmetry reduction
//   --no-net                  plain LPOR NES (disable state-dependent NES)
//   --exhaustive-seed         minimize the stubborn set over all seeds
//   --max-states N / --max-seconds S      per-run budgets
//   --trace                   print the counterexample (if any)
//   --quiet                   only the verdict line
#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/trace.hpp"
#include "harness/runner.hpp"
#include "por/symmetry.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "refine/refine.hpp"

using namespace mpb;
using namespace mpb::protocols;

namespace {

struct Options {
  std::string protocol;
  std::map<std::string, long> nums;  // numeric options by name
  bool single_message = false;
  bool faulty = false;
  bool wrong_regularity = false;
  bool symmetry = false;
  bool no_net = false;
  bool exhaustive_seed = false;
  bool trace = false;
  bool quiet = false;
  std::string strategy = "spor";
  std::string split = "none";
  std::string seed = "opposite";
  std::string visited;  // empty = keep the env/benchmark default
};

long num_or(const Options& o, const std::string& key, long fallback) {
  auto it = o.nums.find(key);
  return it == o.nums.end() ? fallback : it->second;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " paxos|echo|storage|collector [options]\n"
               "run '"
            << argv0 << " --help' for the full option list\n";
  return 2;
}

void help() {
  std::cout <<
      R"(mpbcheck — explicit-state model checking of fault-tolerant protocols

protocols:
  paxos      --proposers N --acceptors N --learners N [--faulty]
  echo       --honest-receivers N --honest-initiators N
             --byz-receivers N --byz-initiators N [--tolerance N]
  storage    --bases N --readers N --writes N [--wrong-regularity]
  collector  --senders N --quorum N [--noise N]

common options:
  --single-message        counting model instead of quorum transitions
  --threads N             worker threads; parallelizes the unreduced stateful
                          search (strategy full), sequential otherwise
  --visited V             exact | fingerprint | interned visited-set storage
  --strategy S            full | spor | dpor | stateless   (default spor)
  --split M               none | reply | quorum | combined (default none)
  --seed H                opposite | transaction | first   (default opposite)
  --symmetry              role-based symmetry reduction
  --no-net                disable state-dependent NES (plain LPOR)
  --exhaustive-seed       minimize the stubborn set over all seeds
  --max-states N          state budget      (default 3,000,000)
  --max-seconds S         time budget       (default 120)
  --trace                 print the counterexample, if any
  --quiet                 only the verdict line
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  Options opt;
  opt.protocol = argv[1];
  if (opt.protocol == "--help" || opt.protocol == "-h") {
    help();
    return 0;
  }

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_str = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        exit(2);
      }
      return argv[++i];
    };
    auto next_num = [&](const std::string& key) {
      opt.nums[key] = std::stol(next_str());
    };
    if (arg == "--single-message") opt.single_message = true;
    else if (arg == "--faulty") opt.faulty = true;
    else if (arg == "--wrong-regularity") opt.wrong_regularity = true;
    else if (arg == "--symmetry") opt.symmetry = true;
    else if (arg == "--no-net") opt.no_net = true;
    else if (arg == "--exhaustive-seed") opt.exhaustive_seed = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--quiet") opt.quiet = true;
    else if (arg == "--strategy") opt.strategy = next_str();
    else if (arg == "--split") opt.split = next_str();
    else if (arg == "--seed") opt.seed = next_str();
    else if (arg == "--visited") opt.visited = next_str();
    else if (arg.rfind("--", 0) == 0) next_num(arg.substr(2));
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  // --- build the protocol and its symmetry roles ---
  Protocol proto("unset");
  std::vector<std::vector<ProcessId>> roles;
  if (opt.protocol == "paxos") {
    PaxosConfig cfg{
        .proposers = static_cast<unsigned>(num_or(opt, "proposers", 2)),
        .acceptors = static_cast<unsigned>(num_or(opt, "acceptors", 3)),
        .learners = static_cast<unsigned>(num_or(opt, "learners", 1)),
        .quorum_model = !opt.single_message,
        .faulty_learner = opt.faulty};
    proto = make_paxos(cfg);
    roles = paxos_symmetric_roles(cfg);
  } else if (opt.protocol == "echo") {
    EchoConfig cfg{
        .honest_receivers = static_cast<unsigned>(num_or(opt, "honest-receivers", 3)),
        .honest_initiators =
            static_cast<unsigned>(num_or(opt, "honest-initiators", 0)),
        .byz_receivers = static_cast<unsigned>(num_or(opt, "byz-receivers", 1)),
        .byz_initiators = static_cast<unsigned>(num_or(opt, "byz-initiators", 1)),
        .tolerance = static_cast<int>(num_or(opt, "tolerance", -1)),
        .quorum_model = !opt.single_message};
    proto = make_echo_multicast(cfg);
    roles = echo_symmetric_roles(cfg);
  } else if (opt.protocol == "storage") {
    StorageConfig cfg{.bases = static_cast<unsigned>(num_or(opt, "bases", 3)),
                      .readers = static_cast<unsigned>(num_or(opt, "readers", 1)),
                      .writes = static_cast<unsigned>(num_or(opt, "writes", 2)),
                      .quorum_model = !opt.single_message,
                      .wrong_regularity = opt.wrong_regularity};
    proto = make_regular_storage(cfg);
    roles = storage_symmetric_roles(cfg);
  } else if (opt.protocol == "collector") {
    CollectorConfig cfg{.senders = static_cast<unsigned>(num_or(opt, "senders", 4)),
                        .quorum = static_cast<unsigned>(num_or(opt, "quorum", 3)),
                        .quorum_model = !opt.single_message,
                        .noise = static_cast<unsigned>(num_or(opt, "noise", 0))};
    proto = make_collector(cfg);
    roles = collector_symmetric_roles(cfg);
  } else {
    return usage(argv[0]);
  }

  // --- refinement ---
  if (opt.split == "reply") proto = refine::reply_split(proto);
  else if (opt.split == "quorum") proto = refine::quorum_split(proto);
  else if (opt.split == "combined") proto = refine::combined_split(proto);
  else if (opt.split != "none") {
    std::cerr << "unknown split: " << opt.split << "\n";
    return 2;
  }

  // --- strategy & budgets ---
  harness::RunSpec spec;
  if (opt.strategy == "full") spec.strategy = harness::Strategy::kUnreducedStateful;
  else if (opt.strategy == "spor") spec.strategy = harness::Strategy::kSpor;
  else if (opt.strategy == "dpor") spec.strategy = harness::Strategy::kDpor;
  else if (opt.strategy == "stateless")
    spec.strategy = harness::Strategy::kUnreducedStateless;
  else {
    std::cerr << "unknown strategy: " << opt.strategy << "\n";
    return 2;
  }
  if (opt.seed == "transaction") spec.spor.seed = SeedHeuristic::kTransaction;
  else if (opt.seed == "first") spec.spor.seed = SeedHeuristic::kFirst;
  else if (opt.seed != "opposite") {
    std::cerr << "unknown seed heuristic: " << opt.seed << "\n";
    return 2;
  }
  spec.spor.state_dependent_nes = !opt.no_net;
  spec.spor.exhaustive_seed = opt.exhaustive_seed;
  spec.explore = harness::budget_from_env();
  if (opt.nums.contains("max-states")) {
    spec.explore.max_states = static_cast<std::uint64_t>(opt.nums["max-states"]);
  }
  if (opt.nums.contains("max-seconds")) {
    spec.explore.max_seconds = static_cast<double>(opt.nums["max-seconds"]);
  }
  if (opt.nums.contains("threads")) {
    spec.explore.threads =
        static_cast<unsigned>(std::clamp(opt.nums["threads"], 1L, 256L));
  }
  if (!opt.visited.empty()) {
    if (auto mode = visited_mode_from_string(opt.visited)) {
      spec.explore.visited = *mode;
    } else {
      std::cerr << "unknown visited mode: " << opt.visited << "\n";
      return 2;
    }
  }
  if (spec.explore.threads > 1 &&
      spec.strategy != harness::Strategy::kUnreducedStateful && !opt.quiet) {
    std::cerr << "note: --threads applies to the unreduced stateful search "
                 "only; running sequentially\n";
  }

  SymmetryReducer sym(proto, opt.symmetry ? roles
                                          : std::vector<std::vector<ProcessId>>{});
  if (opt.symmetry) {
    if (opt.split != "none") {
      // Split copies break the structural symmetry of the original roles.
      std::cerr << "note: --symmetry with --split is unsupported; ignoring "
                   "--symmetry\n";
    } else {
      spec.explore.canonicalize = [&sym](const State& s) {
        return sym.canonicalize(s);
      };
    }
  }

  if (!opt.quiet) {
    std::cout << "model: " << proto.name() << " (" << proto.n_procs()
              << " processes, " << proto.n_transitions() << " transitions)\n"
              << "strategy: " << harness::to_string(spec.strategy)
              << (opt.symmetry ? " + symmetry" : "") << ", split: " << opt.split
              << "\n";
  }

  const ExploreResult r = harness::run(proto, spec);

  std::cout << to_string(r.verdict) << "  states="
            << harness::format_count(r.stats.states_stored)
            << "  events=" << harness::format_count(r.stats.events_executed)
            << "  time=" << harness::format_time(r.stats.seconds);
  if (r.verdict == Verdict::kViolated) std::cout << "  property=" << r.violated_property;
  std::cout << "\n";

  if (opt.trace && r.verdict == Verdict::kViolated) {
    if (r.counterexample.empty()) {
      std::cout << "(no trace: the parallel search does not reconstruct "
                   "counterexample paths; rerun with --threads 1)\n";
    } else {
      print_counterexample(std::cout, proto, r);
      std::cout << "replay: "
                << (replay_counterexample(proto, r) ? "ok" : "FAILED") << "\n";
    }
  }
  return r.verdict == Verdict::kViolated ? 1 : 0;
}
