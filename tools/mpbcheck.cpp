// mpbcheck — registry-driven command-line front end to the check facade.
//
// Usage:
//   mpbcheck --list                          registered models, one line each
//   mpbcheck <model> --help                  the model's parameters (schema)
//   mpbcheck <model> [--param value ...] [engine options]
//
// Every model, parameter, strategy, split and symmetry option resolves
// through src/check (ModelRegistry + Checker): this file contains no
// protocol-specific code, and the per-model help is generated from the same
// schema the parameter parser validates against — the CLI cannot drift from
// the API.
//
// Engine options (any model):
//   --strategy S              full | spor | dpor | stateless   (default spor)
//   --split M                 none | reply | quorum | combined (default none)
//   --seed H                  opposite | transaction | first   (default opposite)
//   --symmetry                role-based symmetry reduction
//   --no-net                  plain LPOR NES (disable state-dependent NES)
//   --exhaustive-seed         minimize the stubborn set over all seeds
//   --proviso P               auto | stack | visited | scc | off  SPOR cycle
//                             proviso (scc: no in-search proviso, SCC-based
//                             ignoring fix over the interned graph)
//   --threads N               worker threads (full, spor and dpor)
//   --no-sleep-sets           dpor: disable the sleep-set layer
//   --visited V               exact | fingerprint | interned | collapse
//   --spill-dir D / --spill-mb N           collapse-mode mmap spill tier
//   --max-states N / --max-seconds S      per-run budgets
//   --progress                rate-limited progress lines on stderr
//   --progress-interval MS    progress line rate limit (implies --progress)
//   --trace                   print the counterexample (if any)
//   --quiet                   only the verdict line
#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/serialize.hpp"
#include "core/trace.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

constexpr std::string_view kEngineHelp =
    R"(engine options:
  --strategy S        full | spor | dpor | stateless   (default spor)
  --split M           none | reply | quorum | combined (default none)
  --seed H            opposite | transaction | first   (default opposite)
  --symmetry          role-based symmetry reduction
  --no-net            plain LPOR NES (disable state-dependent NES)
  --exhaustive-seed   minimize the stubborn set over all seeds
  --proviso P         auto | stack | visited | scc | off  SPOR cycle proviso
                      (auto: stack sequentially, visited with --threads > 1;
                      scc: no in-search proviso, the SCC ignoring fix
                      re-expands one state per ignored SCC afterwards)
  --dist-ranks N      fork N single-threaded rank processes that partition
                      the state space by fingerprint owner (full, or spor
                      under --proviso scc/auto; excludes --threads; budgets
                      and guards apply per rank)
  --threads N         worker threads (full, spor and dpor; dpor distributes
                      backtrack points over the same work-stealing pool)
  --no-sleep-sets     dpor: disable the sleep-set layer (explores a superset
                      of the same traces; exists for A/B measurement)
  --visited V         exact | fingerprint | interned | collapse visited-set
                      storage (collapse: exact component-interned compression,
                      ~10x fewer bytes per state than interned)
  --spill-dir D       collapse only: back the state-node arena with an mmap
                      file in D and advise cold chunks out of RAM
  --spill-mb N        resident budget for spillable chunks in MiB (0 = keep
                      all resident; needs --spill-dir)
  --max-states N      state budget   (default 3,000,000 or MPB_BUDGET_STATES)
  --max-seconds S     time budget    (default 120 or MPB_BUDGET_SECONDS)
  --watchdog S        wall-clock resource guard; aborts with verdict
                      ">resource" and partial stats (unlike the budgets,
                      which report ">budget")
  --guard-states N    hard stored-state resource guard (0 = off)
  --guard-mem-mb N    approximate state-storage memory guard in MiB (0 = off)
  --repeat N          run N times, report the fastest (default 1 or MPB_REPEAT)
  --progress          rate-limited progress lines on stderr (or MPB_PROGRESS)
  --progress-interval MS   min milliseconds between progress lines (implies
                      --progress; default 500 or MPB_PROGRESS_INTERVAL)
  --trace             print the counterexample, if any
  --quiet             only the verdict line
  --json              print the run as one JSON object on stdout (the same
                      document mpbserved streams as a result payload, so a
                      CLI run and a daemon run diff cleanly) and nothing else
)";

int usage() {
  std::cerr << "usage: mpbcheck <model> [--param value ...] [engine options]\n"
               "       mpbcheck --list\n"
               "       mpbcheck <model> --help\n";
  return 2;
}

long parse_long(const std::string& opt, const std::string& value) {
  long out = 0;
  const char* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    std::cerr << "mpbcheck: " << opt << " expects an integer, got '" << value
              << "'\n";
    exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "--list") {
    std::cout << check::describe_models();
    return 0;
  }
  if (args[0] == "--help" || args[0] == "-h") {
    std::cout << "usage: mpbcheck <model> [--param value ...] [engine "
                 "options]\n       mpbcheck --list\n       mpbcheck <model> "
                 "--help\n\n"
              << check::describe_models() << "\n"
              << kEngineHelp;
    return 0;
  }

  const std::string model = args[0];
  const check::ModelInfo* info = check::ModelRegistry::global().find(model);
  if (info == nullptr) {
    std::cerr << "mpbcheck: unknown model '" << model << "'\n\n"
              << check::describe_models();
    return 2;
  }

  check::CheckRequest req;
  req.model = model;
  req.explore = harness::budget_from_env();
  req.repeat = harness::repeat_from_env();
  bool trace = false;
  bool quiet = false;
  bool json = false;
  bool progress = false;
  double progress_interval_s = harness::progress_interval_from_env();
  // A mode chosen by the user — the --visited flag or a valid MPB_VISITED
  // env value (already applied by budget_from_env) — is never overridden.
  bool visited_explicit = harness::visited_mode_from_env().has_value();

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "mpbcheck: " << arg << " needs a value\n";
        exit(2);
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << check::describe_model(model) << "\n" << kEngineHelp;
      return 0;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
      quiet = true;  // the JSON document is the only stdout output
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--progress-interval") {
      progress = true;
      progress_interval_s =
          static_cast<double>(std::clamp(parse_long(arg, next()), 0L, 600000L)) /
          1000.0;
    } else if (arg == "--symmetry") {
      req.symmetry = true;
    } else if (arg == "--no-net") {
      req.spor.state_dependent_nes = false;
    } else if (arg == "--exhaustive-seed") {
      req.spor.exhaustive_seed = true;
    } else if (arg == "--strategy") {
      req.strategy = next();
    } else if (arg == "--split") {
      req.split = next();
    } else if (arg == "--seed") {
      const std::string& name = next();
      if (const auto h = check::seed_from_string(name)) {
        req.spor.seed = *h;
      } else {
        std::cerr << "mpbcheck: unknown seed heuristic '" << name
                  << "'; known: opposite transaction first\n";
        return 2;
      }
    } else if (arg == "--proviso") {
      const std::string& name = next();
      if (const auto p = check::proviso_from_string(name)) {
        req.spor.proviso = *p;
      } else {
        std::cerr << "mpbcheck: unknown cycle proviso '" << name
                  << "'; known: auto stack visited scc off\n";
        return 2;
      }
    } else if (arg == "--visited") {
      const std::string& name = next();
      if (const auto mode = visited_mode_from_string(name)) {
        req.explore.visited = *mode;
        visited_explicit = true;
      } else {
        std::cerr << "mpbcheck: unknown visited mode '" << name
                  << "'; known: exact fingerprint interned collapse\n";
        return 2;
      }
    } else if (arg == "--spill-dir") {
      req.explore.spill_dir = next();
    } else if (arg == "--spill-mb") {
      req.explore.spill_mb =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--threads") {
      req.explore.threads = static_cast<unsigned>(
          std::clamp(parse_long(arg, next()), 1L, 256L));
    } else if (arg == "--dist-ranks") {
      req.dist_ranks = static_cast<unsigned>(
          std::clamp(parse_long(arg, next()), 0L, 64L));
    } else if (arg == "--no-sleep-sets") {
      req.dpor_sleep_sets = false;
    } else if (arg == "--repeat") {
      req.repeat = static_cast<unsigned>(
          std::clamp(parse_long(arg, next()), 1L, 64L));
    } else if (arg == "--max-states") {
      req.explore.max_states =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--max-seconds") {
      req.explore.max_seconds = static_cast<double>(parse_long(arg, next()));
    } else if (arg == "--watchdog") {
      req.explore.guard.watchdog_seconds =
          static_cast<double>(parse_long(arg, next()));
    } else if (arg == "--guard-states") {
      req.explore.guard.max_states =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--guard-mem-mb") {
      req.explore.guard.max_memory_bytes =
          static_cast<std::uint64_t>(parse_long(arg, next())) << 20;
    } else if (arg.rfind("--", 0) == 0) {
      // Anything else is a model parameter: the schema says whether it is a
      // value-less flag (bool) or consumes the next argument (int).
      const std::string key = arg.substr(2);
      const check::ParamSpec* spec = nullptr;
      for (const check::ParamSpec& candidate : info->params) {
        if (candidate.name == key) {
          spec = &candidate;
          break;
        }
      }
      if (spec == nullptr) {
        std::cerr << "mpbcheck: model '" << model << "' has no option '" << arg
                  << "'\n\n"
                  << check::describe_model(model) << "\n"
                  << kEngineHelp;
        return 2;
      }
      req.params[key] = spec->type == check::ParamType::kBool ? "" : next();
    } else {
      std::cerr << "mpbcheck: unknown argument: " << arg << "\n";
      return 2;
    }
  }

  if (req.explore.threads > 1 && !quiet && req.strategy == "stateless") {
    std::cerr << "note: --threads applies to full, spor and dpor only; the "
                 "unreduced stateless walk runs sequentially\n";
  }

  // Parallel trace reconstruction walks the interned state graph, which the
  // default (memory-flat fingerprint) visited mode does not record. Honour an
  // explicit --visited choice; otherwise upgrade so --trace just works
  // (including under --symmetry: entries record the canonicalizing
  // permutation and the frontier carries concrete states, so the chain
  // replays concretely). Only the stateful strategies run on the pool —
  // dpor/stateless reconstruct traces from their sequential DFS stack
  // whatever the visited mode.
  if (trace && req.explore.threads > 1 && !visited_explicit &&
      (req.strategy == "full" || req.strategy == "spor") &&
      req.explore.visited == VisitedMode::kFingerprint) {
    req.explore.visited = VisitedMode::kInterned;
    if (!quiet) {
      std::cerr << "note: --trace with --threads needs interned states; "
                   "using --visited interned\n";
    }
  }

  if (progress) {
    req.explore.progress_every_events = 1u << 14;
    req.explore.on_progress = harness::make_progress_logger(progress_interval_s);
  }

  try {
    const std::string strategy = req.strategy;
    const std::string split = req.split;
    const bool symmetry = req.symmetry;
    const unsigned dist_ranks = req.dist_ranks;
    check::Checker checker(std::move(req));

    if (!quiet) {
      std::cout << "model: " << checker.protocol().name() << " ("
                << checker.protocol().n_procs() << " processes, "
                << checker.protocol().n_transitions() << " transitions)\n"
                << "strategy: " << strategy
                << (symmetry ? " + symmetry" : "") << ", split: " << split
                << "\n";
    }

    const check::CheckResult r = checker.run();

    if (json) {
      std::cout << check::result_to_json(r).dump() << "\n";
      return r.verdict() == Verdict::kViolated ? 1 : 0;
    }

    std::cout << to_string(r.verdict())
              << "  states=" << harness::format_count(r.stats().states_stored)
              << "  events=" << harness::format_count(r.stats().events_executed)
              << "  time=" << harness::format_time(r.stats().seconds);
    if (dist_ranks > 0) {
      std::cout << "  ranks=" << r.threads
                << "  forwarded=" << harness::format_count(
                       r.stats().forwarded_states);
      if (r.stats().forward_batches > 0) {
        std::cout << "  avg-batch="
                  << r.stats().forwarded_states / r.stats().forward_batches
                  << "  wire=" << harness::format_count(r.stats().wire_bytes)
                  << "B";
      }
    } else if (r.threads > 1) {
      std::cout << "  threads=" << r.threads;
    }
    if (r.repeats > 1) std::cout << "  best-of=" << r.repeats;
    if (r.proviso != "-") std::cout << "  proviso=" << r.proviso;
    if (r.proviso == "scc") {
      std::cout << "  scc-reexp=" << r.stats().scc_reexpansions
                << "  scc-pass=" << harness::format_time(
                       r.stats().scc_pass_ms / 1000.0);
    }
    if (strategy == "dpor" && r.stats().sleep_blocked > 0) {
      std::cout << "  sleep-blocked="
                << harness::format_count(r.stats().sleep_blocked);
    }
    if (r.verdict() == Verdict::kViolated) {
      std::cout << "  property=" << r.result.violated_property;
    }
    std::cout << "\n";

    if (trace && r.verdict() == Verdict::kViolated) {
      const Property* violated =
          r.protocol.find_property(r.result.violated_property);
      if (r.result.counterexample.empty() && violated != nullptr &&
          !violated->holds(r.protocol.initial(), r.protocol)) {
        // A zero-step counterexample: no search ran past the root.
        std::cout << "Counterexample: the initial state already violates '"
                  << r.result.violated_property << "'\n";
        print_state(std::cout, r.protocol, r.protocol.initial());
      } else if (r.result.counterexample.empty()) {
        std::cout << "(no trace: this run recorded no replayable path — the "
                     "fingerprint visited mode stores no state graph; rerun "
                     "with --visited interned, or with --threads 1)\n";
      } else {
        print_counterexample(std::cout, r.protocol, r.result);
        std::cout << "replay: "
                  << (replay_counterexample(r.protocol, r.result) ? "ok"
                                                                  : "FAILED")
                  << "\n";
      }
    }
    return r.verdict() == Verdict::kViolated ? 1 : 0;
  } catch (const check::CheckError& e) {
    std::cerr << "mpbcheck: " << e.what() << "\n";
    return 2;
  }
}
