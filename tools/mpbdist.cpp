// mpbdist — thin launcher for the distributed (multi-process) search.
//
// Usage:
//   mpbdist <model> [--param value ...] [options]
//
// Everything resolves through the same check facade as mpbcheck (this is
// `mpbcheck <model> --dist-ranks N` with distribution-first defaults and a
// forwarding-focused report line); it exists so scripts and the nightly
// lanes have a stable, single-purpose entry point for rank sweeps.
//
// Options:
//   --ranks N          rank processes to fork            (default 2, max 64)
//   --strategy S       full | spor                       (default full)
//   --proviso P        auto | scc   (spor only; both resolve to scc)
//   --max-states N / --max-seconds S / --watchdog S   per-rank budgets/guards
//   --trace            print the counterexample (if any)
//   --json             print the run as one JSON object and nothing else
//   --quiet            only the verdict line
#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/serialize.hpp"
#include "core/trace.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

int usage() {
  std::cerr << "usage: mpbdist <model> [--param value ...] [options]\n"
               "  --ranks N        rank processes to fork (default 2, max 64)\n"
               "  --strategy S     full | spor (default full)\n"
               "  --proviso P      auto | scc (spor only)\n"
               "  --max-states N   per-rank state budget\n"
               "  --max-seconds S  per-rank time budget\n"
               "  --watchdog S     per-rank wall-clock resource guard\n"
               "  --trace          print the counterexample, if any\n"
               "  --json           JSON result document only\n"
               "  --quiet          only the verdict line\n"
               "run `mpbcheck --list` for the model registry\n";
  return 2;
}

long parse_long(const std::string& opt, const std::string& value) {
  long out = 0;
  const char* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    std::cerr << "mpbdist: " << opt << " expects an integer, got '" << value
              << "'\n";
    exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") return usage();

  const std::string model = args[0];
  const check::ModelInfo* info = check::ModelRegistry::global().find(model);
  if (info == nullptr) {
    std::cerr << "mpbdist: unknown model '" << model << "'\n\n"
              << check::describe_models();
    return 2;
  }

  check::CheckRequest req;
  req.model = model;
  req.explore = harness::budget_from_env();
  req.strategy = "full";
  req.dist_ranks = 2;
  bool trace = false;
  bool quiet = false;
  bool json = false;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "mpbdist: " << arg << " needs a value\n";
        exit(2);
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << check::describe_model(model);
      return usage();
    } else if (arg == "--ranks") {
      req.dist_ranks =
          static_cast<unsigned>(std::clamp(parse_long(arg, next()), 1L, 64L));
    } else if (arg == "--strategy") {
      req.strategy = next();
    } else if (arg == "--proviso") {
      const std::string& name = next();
      if (const auto p = check::proviso_from_string(name)) {
        req.spor.proviso = *p;
      } else {
        std::cerr << "mpbdist: unknown cycle proviso '" << name
                  << "'; distributed runs take auto or scc\n";
        return 2;
      }
    } else if (arg == "--max-states") {
      req.explore.max_states =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--max-seconds") {
      req.explore.max_seconds = static_cast<double>(parse_long(arg, next()));
    } else if (arg == "--watchdog") {
      req.explore.guard.watchdog_seconds =
          static_cast<double>(parse_long(arg, next()));
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--json") {
      json = true;
      quiet = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      const check::ParamSpec* spec = nullptr;
      for (const check::ParamSpec& candidate : info->params) {
        if (candidate.name == key) {
          spec = &candidate;
          break;
        }
      }
      if (spec == nullptr) {
        std::cerr << "mpbdist: model '" << model << "' has no option '" << arg
                  << "'\n\n"
                  << check::describe_model(model);
        return 2;
      }
      req.params[key] = spec->type == check::ParamType::kBool ? "" : next();
    } else {
      std::cerr << "mpbdist: unknown argument: " << arg << "\n";
      return 2;
    }
  }

  try {
    const std::string strategy = req.strategy;
    const unsigned ranks = req.dist_ranks;
    check::Checker checker(std::move(req));

    if (!quiet) {
      std::cout << "model: " << checker.protocol().name() << " ("
                << checker.protocol().n_procs() << " processes, "
                << checker.protocol().n_transitions() << " transitions)\n"
                << "strategy: " << strategy << ", ranks: " << ranks << "\n";
    }

    const check::CheckResult r = checker.run();

    if (json) {
      std::cout << check::result_to_json(r).dump() << "\n";
      return r.verdict() == Verdict::kViolated ? 1 : 0;
    }

    std::cout << to_string(r.verdict())
              << "  states=" << harness::format_count(r.stats().states_stored)
              << "  events=" << harness::format_count(r.stats().events_executed)
              << "  time=" << harness::format_time(r.stats().seconds)
              << "  ranks=" << r.threads << "  forwarded="
              << harness::format_count(r.stats().forwarded_states);
    if (r.stats().forward_batches > 0) {
      std::cout << "  avg-batch="
                << r.stats().forwarded_states / r.stats().forward_batches
                << "  wire=" << harness::format_count(r.stats().wire_bytes)
                << "B";
    }
    if (r.proviso == "scc") {
      std::cout << "  scc-reexp=" << r.stats().scc_reexpansions;
    }
    if (r.verdict() == Verdict::kViolated) {
      std::cout << "  property=" << r.result.violated_property;
    }
    std::cout << "\n";

    if (trace && r.verdict() == Verdict::kViolated) {
      if (r.result.counterexample.empty()) {
        std::cout << "(no replayable trace recorded)\n";
      } else {
        print_counterexample(std::cout, r.protocol, r.result);
        std::cout << "replay: "
                  << (replay_counterexample(r.protocol, r.result) ? "ok"
                                                                  : "FAILED")
                  << "\n";
      }
    }
    return r.verdict() == Verdict::kViolated ? 1 : 0;
  } catch (const check::CheckError& e) {
    std::cerr << "mpbdist: " << e.what() << "\n";
    return 2;
  }
}
