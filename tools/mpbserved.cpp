// mpbserved — the long-running model-checking service (src/serve).
//
// Usage:
//   mpbserved --socket /run/mpb.sock [options]
//
// Options:
//   --socket PATH        Unix-domain listening socket (required)
//   --tcp PORT           also listen on 127.0.0.1:PORT
//   --workers N          concurrent jobs (default 2)
//   --queue-depth N      queued-job bound; excess submits are rejected
//                        (default 64)
//   --cache-mb N         result-cache byte budget (default 64)
//   --limits FILE       `key = value` ceilings applied to every submit:
//                        max_threads, max_states, max_seconds,
//                        watchdog_seconds, max_memory_mb, cache_mb;
//                        re-read on SIGHUP
//   --quiet              no log lines on stderr
//
// Signals: SIGTERM / SIGINT drain the queue (running and queued jobs finish,
// attached clients get their final results) and exit; SIGHUP re-reads
// --limits without dropping a connection. The wire protocol and command set
// are documented in src/serve/server.hpp and docs/SERVICE.md; mpbctl is the
// matching client.
#include <csignal>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_term = 0;
volatile std::sig_atomic_t g_hup = 0;

void on_term(int) { g_term = 1; }
void on_hup(int) { g_hup = 1; }

int usage() {
  std::cerr << "usage: mpbserved --socket PATH [--tcp PORT] [--workers N]\n"
               "                 [--queue-depth N] [--cache-mb N] "
               "[--limits FILE] [--quiet]\n";
  return 2;
}

long parse_long(const std::string& opt, const std::string& value) {
  char* end = nullptr;
  const long out = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::cerr << "mpbserved: " << opt << " expects an integer, got '" << value
              << "'\n";
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  mpb::serve::ServerConfig cfg;
  bool quiet = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "mpbserved: " << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--socket") {
      cfg.socket_path = next();
    } else if (arg == "--tcp") {
      cfg.tcp_port = static_cast<std::uint16_t>(parse_long(arg, next()));
    } else if (arg == "--workers") {
      cfg.workers = static_cast<unsigned>(parse_long(arg, next()));
    } else if (arg == "--queue-depth") {
      cfg.queue_depth = static_cast<std::size_t>(parse_long(arg, next()));
    } else if (arg == "--cache-mb") {
      cfg.cache_bytes = static_cast<std::uint64_t>(parse_long(arg, next()))
                        << 20;
    } else if (arg == "--limits") {
      cfg.limits_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "mpbserved: unknown argument: " << arg << "\n";
      return usage();
    }
  }
  if (cfg.socket_path.empty()) return usage();
  if (!quiet) {
    cfg.log = [](std::string_view msg) {
      std::cerr << "mpbserved: " << msg << "\n";
    };
  }

  // Apply the limits file at startup too, so SIGHUP and boot agree.
  if (!cfg.limits_path.empty()) {
    std::string err;
    const auto loaded = mpb::serve::load_limits_file(cfg.limits_path, &err);
    if (!loaded) {
      std::cerr << "mpbserved: " << err << "\n";
      return 2;
    }
    cfg.limits = loaded->limits;
    if (loaded->cache_bytes) cfg.cache_bytes = *loaded->cache_bytes;
  }

  mpb::serve::Server server(std::move(cfg));
  if (!server.start()) return 1;

  struct sigaction sa{};
  sa.sa_handler = on_term;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = on_hup;
  sigaction(SIGHUP, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // The handlers only set flags; this loop turns them into server calls.
  // A `shutdown` wire command also flips the server's internal flag, which
  // wait() observes — poll both.
  for (;;) {
    if (g_term != 0) {
      server.begin_shutdown(/*drain=*/true);
      break;
    }
    if (g_hup != 0) {
      g_hup = 0;
      server.reload_limits();
    }
    struct timespec ts{0, 100'000'000};  // 100ms
    nanosleep(&ts, nullptr);
    if (server.shutdown_requested()) break;
  }
  server.wait();
  return 0;
}
