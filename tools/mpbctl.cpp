// mpbctl — command-line client for mpbserved (src/serve).
//
// Usage:
//   mpbctl --socket PATH submit <model> [--param value ...] [engine options]
//   mpbctl --socket PATH status <job-id>
//   mpbctl --socket PATH cancel <job-id>
//   mpbctl --socket PATH metrics
//   mpbctl --socket PATH ping
//   mpbctl --socket PATH shutdown [--no-drain]
//
// submit blocks by default: it streams the daemon's progress lines to stderr
// and prints the final result document (the same JSON `mpbcheck --json`
// prints) to stdout, so a daemon run and a CLI run diff cleanly:
//
//   mpbctl --socket /run/mpb.sock submit paxos --proposers 2 | jq .verdict
//
// submit options (besides the mpbcheck-style engine options forwarded in the
// request): --detach returns the job id immediately and leaves the job
// running; --quiet suppresses the progress stream. Exit codes follow
// mpbcheck: 0 verified, 1 violated, 2 error (plus 3 for a cancelled or
// failed job).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/serialize.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"

using namespace mpb;

namespace {

int usage() {
  std::cerr
      << "usage: mpbctl --socket PATH <command>\n"
         "  submit <model> [--param value ...] [engine options] [--detach]\n"
         "  status <job-id>\n"
         "  cancel <job-id>\n"
         "  metrics\n"
         "  ping\n"
         "  shutdown [--no-drain]\n"
         "engine options: --strategy --split --seed --proviso --symmetry\n"
         "  --threads --dist-ranks --visited --max-states --max-seconds\n"
         "  --watchdog\n"
         "  --spill-mb (collapse mode: ask the server for its spill tier;\n"
         "  the spill directory is always the server's own)\n";
  return 2;
}

long parse_long(const std::string& opt, const std::string& value) {
  char* end = nullptr;
  const long out = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::cerr << "mpbctl: " << opt << " expects an integer, got '" << value
              << "'\n";
    std::exit(2);
  }
  return out;
}

// Build a CheckRequest from mpbcheck-style arguments, then serialize it —
// request_to_json re-validates and emits only non-default fields, so the
// wire request stays minimal and canonical.
util::Json build_request(const std::vector<std::string>& args,
                         std::size_t begin, bool* detach, bool* quiet) {
  check::CheckRequest req;
  req.model = args[begin];
  const check::ModelInfo* info =
      check::ModelRegistry::global().find(req.model);
  if (info == nullptr) {
    throw check::CheckError("unknown model '" + req.model + "'");
  }
  for (std::size_t i = begin + 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw check::CheckError(arg + " needs a value");
      }
      return args[++i];
    };
    if (arg == "--detach") {
      *detach = true;
    } else if (arg == "--quiet") {
      *quiet = true;
    } else if (arg == "--strategy") {
      req.strategy = next();
    } else if (arg == "--split") {
      req.split = next();
    } else if (arg == "--symmetry") {
      req.symmetry = true;
    } else if (arg == "--seed") {
      const std::string& name = next();
      const auto h = check::seed_from_string(name);
      if (!h) throw check::CheckError("unknown seed heuristic '" + name + "'");
      req.spor.seed = *h;
    } else if (arg == "--proviso") {
      const std::string& name = next();
      const auto p = check::proviso_from_string(name);
      if (!p) throw check::CheckError("unknown cycle proviso '" + name + "'");
      req.spor.proviso = *p;
    } else if (arg == "--visited") {
      const std::string& name = next();
      const auto mode = visited_mode_from_string(name);
      if (!mode) throw check::CheckError("unknown visited mode '" + name + "'");
      req.explore.visited = *mode;
    } else if (arg == "--spill-mb") {
      // Opt into the server's spill tier; the daemon substitutes its own
      // configured directory (a client path on the server fs is never used).
      req.explore.spill_mb =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--threads") {
      req.explore.threads = static_cast<unsigned>(parse_long(arg, next()));
    } else if (arg == "--dist-ranks") {
      // The daemon clamps this to its max_threads limit and runs the rank
      // guards per process (docs/SERVICE.md "Limits file").
      req.dist_ranks = static_cast<unsigned>(parse_long(arg, next()));
    } else if (arg == "--max-states") {
      req.explore.max_states =
          static_cast<std::uint64_t>(parse_long(arg, next()));
    } else if (arg == "--max-seconds") {
      req.explore.max_seconds = static_cast<double>(parse_long(arg, next()));
    } else if (arg == "--watchdog") {
      req.explore.guard.watchdog_seconds =
          static_cast<double>(parse_long(arg, next()));
    } else if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      const check::ParamSpec* spec = nullptr;
      for (const check::ParamSpec& candidate : info->params) {
        if (candidate.name == key) {
          spec = &candidate;
          break;
        }
      }
      if (spec == nullptr) {
        throw check::CheckError("model '" + req.model + "' has no option '" +
                                arg + "'");
      }
      req.params[key] = spec->type == check::ParamType::kBool ? "" : next();
    } else {
      throw check::CheckError("unknown argument: " + arg);
    }
  }
  return check::request_to_json(req);
}

// One response with ok checking; exits on transport or server errors.
util::Json expect_reply(serve::Client& client) {
  const auto reply = client.read(/*timeout_ms=*/30'000);
  if (!reply) {
    std::cerr << "mpbctl: no response from server\n";
    std::exit(2);
  }
  if (reply->is_object() && !reply->get_bool("ok", true)) {
    std::cerr << "mpbctl: server: " << reply->get_string("error", "error")
              << "\n";
    std::exit(2);
  }
  return *reply;
}

int run_submit(serve::Client& client, const std::vector<std::string>& args,
               std::size_t begin) {
  bool detach = false;
  bool quiet = false;
  util::Json request = build_request(args, begin, &detach, &quiet);
  util::Json msg = util::Json::object();
  msg["cmd"] = "submit";
  msg["request"] = std::move(request);
  if (detach) msg["detach"] = true;
  if (!client.send(msg)) {
    std::cerr << "mpbctl: cannot send request\n";
    return 2;
  }
  const util::Json accepted = expect_reply(client);
  const auto job = accepted.get_int("job", 0);
  if (detach) {
    std::cout << "job " << job << " accepted"
              << (accepted.get_bool("cached", false) ? " (cached)" : "")
              << "\n";
    return 0;
  }
  // Stream until the final result line.
  for (;;) {
    const auto line = client.read(/*timeout_ms=*/-1);
    if (!line) {
      std::cerr << "mpbctl: connection lost while waiting for job " << job
                << "\n";
      return 2;
    }
    const std::string type = line->get_string("type", "");
    if (type == "progress") {
      if (!quiet) {
        std::cerr << "progress: states=" << line->get_int("states", 0)
                  << " events=" << line->get_int("events", 0)
                  << " frontier=" << line->get_int("frontier", 0)
                  << " t=" << line->get_double("seconds", 0.0) << "s\n";
      }
      continue;
    }
    if (type != "result") continue;
    const std::string state = line->get_string("state", "");
    if (state == "failed") {
      std::cerr << "mpbctl: job failed: " << line->get_string("error", "?")
                << "\n";
      return 3;
    }
    if (const util::Json* result = line->find("result")) {
      std::cout << result->dump() << "\n";
      const std::string verdict =
          result->is_object() ? result->get_string("verdict", "") : "";
      if (state == "cancelled") return 3;
      return verdict == "CE" ? 1 : 0;
    }
    return state == "done" ? 0 : 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string socket_path;
  std::size_t i = 0;
  for (; i < args.size(); ++i) {
    if (args[i] == "--socket") {
      if (i + 1 >= args.size()) return usage();
      socket_path = args[++i];
    } else if (args[i] == "--help" || args[i] == "-h") {
      usage();
      return 0;
    } else {
      break;
    }
  }
  if (socket_path.empty() || i >= args.size()) return usage();
  const std::string cmd = args[i++];

  serve::Client client;
  if (!client.connect_unix(socket_path)) {
    std::cerr << "mpbctl: cannot connect to " << socket_path << "\n";
    return 2;
  }

  try {
    if (cmd == "submit") {
      if (i >= args.size()) return usage();
      return run_submit(client, args, i);
    }
    util::Json msg = util::Json::object();
    if (cmd == "ping") {
      msg["cmd"] = "ping";
      if (!client.send(msg)) return 2;
      const util::Json reply = expect_reply(client);
      std::cout << reply.get_string("version", "?") << "\n";
      return 0;
    }
    if (cmd == "metrics") {
      msg["cmd"] = "metrics";
      if (!client.send(msg)) return 2;
      const util::Json reply = expect_reply(client);
      std::cout << reply.get_string("text", "");
      return 0;
    }
    if (cmd == "status" || cmd == "cancel") {
      if (i >= args.size()) return usage();
      msg["cmd"] = cmd;
      msg["job"] = parse_long(cmd, args[i]);
      if (!client.send(msg)) return 2;
      const util::Json reply = expect_reply(client);
      std::cout << reply.dump() << "\n";
      return 0;
    }
    if (cmd == "shutdown") {
      msg["cmd"] = "shutdown";
      if (i < args.size() && args[i] == "--no-drain") msg["drain"] = false;
      if (!client.send(msg)) return 2;
      (void)expect_reply(client);
      std::cout << "shutting down\n";
      return 0;
    }
    std::cerr << "mpbctl: unknown command '" << cmd << "'\n";
    return usage();
  } catch (const check::CheckError& e) {
    std::cerr << "mpbctl: " << e.what() << "\n";
    return 2;
  } catch (const util::JsonError& e) {
    std::cerr << "mpbctl: " << e.what() << "\n";
    return 2;
  }
}
