#!/usr/bin/env bash
# One-command Address+UBSan lane: configure + build the ASan tree
# (build-asan/, see CMakePresets.json) and run the `unit`, `soundness`,
# `fuzz`, `serve`, `memory` and `dist` labeled ctest slices — everything
# except the thread-pool timing tests, which belong to the TSan lane
# (tools/run_tsan.sh).
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan-checks "$@"
