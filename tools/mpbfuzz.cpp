// mpbfuzz — differential fuzzing front end (src/fuzz).
//
// Campaign mode: generate a seeded random protocol per seed, run it through
// the full differential-oracle lane matrix (full / spor stack / spor visited
// / spor scc / dpor, sequential and parallel, with and without symmetry),
// and on any divergence shrink the spec with the delta-debugging minimizer
// and write a deterministic `.repro` file.
//
//   mpbfuzz --seeds 0..199                   campaign over a seed range
//   mpbfuzz --seeds 50                       a single seed
//   mpbfuzz --replay out/seed-7.repro        re-run a written repro
//
// Options:
//   --seeds A..B | N    seed range (inclusive ends) or single seed (default 0..99)
//   --threads N         parallel-lane worker threads (default 4; 1 disables)
//   --no-parallel       drop the multi-threaded lanes
//   --no-symmetry       drop the symmetry lanes
//   --no-dist           drop the multi-process dist/r2 lane
//   --guard-states N    per-lane stored-state guard (default 16384)
//   --guard-mem-mb N    per-lane memory guard in MiB (default 256)
//   --watchdog S        per-lane wall-clock watchdog seconds (default 5)
//   --out DIR           where .repro files go (default fuzz-out)
//   --no-minimize       write the unshrunken spec on divergence
//   --inject-proviso-bug  enable the broken-cycle-proviso lane (test only:
//                       proves the oracle catches an unsound reduction)
//   --replay FILE       parse FILE, run the oracle once, print every lane
//   --quiet             only the summary line
//
// Exit status: 0 = no divergence, 1 = divergence found, 2 = usage error.
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"

using namespace mpb;

namespace {

int usage() {
  std::cerr << "usage: mpbfuzz [--seeds A..B|N] [--threads N] [--no-parallel]\n"
               "               [--no-symmetry] [--no-dist] [--guard-states N] "
               "[--guard-mem-mb N]\n"
               "               [--watchdog S] [--out DIR] [--no-minimize]\n"
               "               [--inject-proviso-bug] [--quiet]\n"
               "       mpbfuzz --replay FILE [lane options]\n";
  return 2;
}

long long parse_ll(const std::string& opt, const std::string& value) {
  long long out = 0;
  const char* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end || out < 0) {
    std::cerr << "mpbfuzz: " << opt << " expects a non-negative integer, got '"
              << value << "'\n";
    exit(2);
  }
  return out;
}

const char* status_name(fuzz::OracleStatus s) {
  switch (s) {
    case fuzz::OracleStatus::kAgree: return "agree";
    case fuzz::OracleStatus::kResourceSkip: return "resource-skip";
    case fuzz::OracleStatus::kDiverged: return "DIVERGED";
  }
  return "?";
}

void print_lanes(const fuzz::OracleReport& rep) {
  for (const fuzz::OracleRun& r : rep.runs) {
    std::cout << "  " << r.name << ": " << to_string(r.verdict) << ", "
              << r.states_stored << " states, " << r.terminals << " terminals"
              << (r.skipped ? " [skipped]" : "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 99;
  fuzz::OracleConfig oracle;
  std::string out_dir = "fuzz-out";
  std::string replay_file;
  bool do_minimize = true;
  bool quiet = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "mpbfuzz: " << arg << " needs a value\n";
        exit(2);
      }
      return args[++i];
    };
    if (arg == "--seeds") {
      const std::string& v = next();
      const auto dots = v.find("..");
      if (dots == std::string::npos) {
        seed_lo = seed_hi = static_cast<std::uint64_t>(parse_ll(arg, v));
      } else {
        seed_lo = static_cast<std::uint64_t>(parse_ll(arg, v.substr(0, dots)));
        seed_hi = static_cast<std::uint64_t>(parse_ll(arg, v.substr(dots + 2)));
        if (seed_hi < seed_lo) {
          std::cerr << "mpbfuzz: empty seed range '" << v << "'\n";
          return 2;
        }
      }
    } else if (arg == "--threads") {
      oracle.par_threads = static_cast<unsigned>(parse_ll(arg, next()));
      if (oracle.par_threads < 2) oracle.test_parallel = false;
    } else if (arg == "--no-parallel") {
      oracle.test_parallel = false;
    } else if (arg == "--no-symmetry") {
      oracle.test_symmetry = false;
    } else if (arg == "--no-dist") {
      oracle.test_dist = false;
    } else if (arg == "--guard-states") {
      oracle.guard_states = static_cast<std::uint64_t>(parse_ll(arg, next()));
    } else if (arg == "--guard-mem-mb") {
      oracle.guard_memory_bytes =
          static_cast<std::uint64_t>(parse_ll(arg, next())) << 20;
    } else if (arg == "--watchdog") {
      oracle.watchdog_seconds = static_cast<double>(parse_ll(arg, next()));
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--no-minimize") {
      do_minimize = false;
    } else if (arg == "--inject-proviso-bug") {
      oracle.inject_unsound_reduction = true;
    } else if (arg == "--replay") {
      replay_file = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "mpbfuzz: unknown option '" << arg << "'\n";
      return usage();
    }
  }

  // --- replay mode -----------------------------------------------------------
  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::cerr << "mpbfuzz: cannot open '" << replay_file << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    fuzz::ProtocolSpec spec;
    try {
      spec = fuzz::parse_repro(text.str());
    } catch (const std::exception& e) {
      std::cerr << "mpbfuzz: bad repro: " << e.what() << "\n";
      return 2;
    }
    std::cout << fuzz::describe(spec) << "\n";
    const fuzz::OracleReport rep = fuzz::run_oracle(spec, oracle);
    print_lanes(rep);
    std::cout << "status: " << status_name(rep.status);
    if (!rep.detail.empty()) std::cout << " — " << rep.detail;
    std::cout << "\n";
    return rep.diverged() ? 1 : 0;
  }

  // --- campaign mode ---------------------------------------------------------
  std::uint64_t agree = 0;
  std::uint64_t skipped = 0;
  std::uint64_t diverged = 0;
  bool out_dir_ready = false;

  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    const fuzz::ProtocolSpec spec = fuzz::generate(seed);
    fuzz::OracleReport rep;
    try {
      rep = fuzz::run_oracle(spec, oracle);
    } catch (const std::exception& e) {
      // A generated spec must always render and check; anything thrown here
      // is itself a finding.
      std::cerr << "seed " << seed << ": oracle threw: " << e.what() << "\n";
      ++diverged;
      continue;
    }
    switch (rep.status) {
      case fuzz::OracleStatus::kAgree: ++agree; break;
      case fuzz::OracleStatus::kResourceSkip:
        ++skipped;
        if (!quiet) std::cout << "seed " << seed << ": " << rep.detail << "\n";
        break;
      case fuzz::OracleStatus::kDiverged: {
        ++diverged;
        std::cout << "seed " << seed << ": DIVERGED — " << rep.detail << "\n";
        if (!quiet) print_lanes(rep);

        fuzz::ProtocolSpec repro = spec;
        if (do_minimize) {
          fuzz::MinimizeStats ms;
          repro = fuzz::minimize(spec, oracle, &ms);
          std::cout << "  minimized in " << ms.attempts << " oracle runs ("
                    << ms.accepted << " shrink steps): "
                    << fuzz::describe(repro) << "\n";
        }
        std::error_code ec;
        if (!out_dir_ready) {
          std::filesystem::create_directories(out_dir, ec);
          out_dir_ready = true;
        }
        const std::string path =
            out_dir + "/seed-" + std::to_string(seed) + ".repro";
        std::ofstream out(path);
        out << fuzz::serialize(repro);
        std::cout << "  repro written to " << path << "\n";
        break;
      }
    }
  }

  const std::uint64_t total = seed_hi - seed_lo + 1;
  std::cout << "mpbfuzz: seeds=" << total << " agree=" << agree
            << " resource-skip=" << skipped << " diverged=" << diverged << "\n";
  return diverged > 0 ? 1 : 0;
}
