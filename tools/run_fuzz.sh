#!/usr/bin/env bash
# Long-running differential fuzz campaign: time-boxed, sharded over seed
# ranges, repros collected in fuzz-out/. Each shard runs `mpbfuzz` over a
# contiguous seed block; the campaign stops when the time box expires or a
# divergence is found (whichever comes first). The lane matrix includes the
# dpor lanes (t1, t1/nosleep, tN parallel driver) and the multi-process
# dist/r2 lane next to full/spor — see src/fuzz/oracle.cpp.
#
# Usage: tools/run_fuzz.sh [mpbfuzz options...]
#
# Environment:
#   MPB_FUZZ_SECONDS   time box in seconds            (default 300)
#   MPB_FUZZ_SHARD     seeds per shard                (default 500)
#   MPB_FUZZ_START     first seed of the campaign     (default 0)
#   MPB_FUZZ_OUT       repro directory                (default fuzz-out)
#
# Exit status: 0 = time box expired with no divergence, 1 = divergence
# found (repros in $MPB_FUZZ_OUT), 2 = build/usage error.
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_BOX="${MPB_FUZZ_SECONDS:-300}"
SHARD="${MPB_FUZZ_SHARD:-500}"
START="${MPB_FUZZ_START:-0}"
OUT="${MPB_FUZZ_OUT:-fuzz-out}"

cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)" --target mpbfuzz >/dev/null
FUZZ=build/mpbfuzz

mkdir -p "$OUT"
deadline=$((SECONDS + SECONDS_BOX))
lo="$START"
total_shards=0

while [ "$SECONDS" -lt "$deadline" ]; do
  hi=$((lo + SHARD - 1))
  echo "shard: seeds ${lo}..${hi}"
  if ! "$FUZZ" --seeds "${lo}..${hi}" --out "$OUT" --quiet "$@"; then
    echo "run_fuzz: divergence found; repros in $OUT/"
    exit 1
  fi
  lo=$((hi + 1))
  total_shards=$((total_shards + 1))
done

echo "run_fuzz: clean campaign — $total_shards shard(s) of $SHARD seeds, no divergence"
