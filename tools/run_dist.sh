#!/usr/bin/env bash
# One-command distributed smoke lane: build the default tree and pin the
# paxos(2,3,1) state counts at 1, 2 and 4 ranks under both searches the
# distributed driver supports — `full` and `spor --proviso scc`. The
# fingerprint partition must not change what is explored: every rank count
# has to land on exactly the sequential count (9,945 unreduced, 9,867
# SPOR+SCC), and a multi-rank run must actually forward states (a zero
# forward count at r2/r4 means the partition silently collapsed to one
# owner). Any mismatch exits non-zero.
#
# Usage: tools/run_dist.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j"$(nproc)" --target mpbdist

expect_full=9945
expect_scc=9867

run_cell() { # strategy ranks expected_states
  local strategy="$1" ranks="$2" expected="$3"
  local args=(paxos --proposers 2 --acceptors 3 --learners 1
              --ranks "$ranks" --strategy "$strategy" --json)
  [[ "$strategy" == spor ]] && args+=(--proviso scc)
  local out
  out="$(build/mpbdist "${args[@]}")"
  echo "$out" | grep -q "\"states_stored\":[[:space:]]*${expected}\b" || {
    echo "run_dist: ${strategy}/r${ranks} missed the pinned state count" \
         "(want ${expected}): ${out}" >&2
    exit 1
  }
  if [[ "$ranks" -gt 1 ]]; then
    echo "$out" | grep -q "\"forwarded_states\":[[:space:]]*0\b" && {
      echo "run_dist: ${strategy}/r${ranks} forwarded nothing —" \
           "the partition degenerated: ${out}" >&2
      exit 1
    }
  fi
  echo "run_dist: ${strategy}/r${ranks} ok (states=${expected})"
}

for ranks in 1 2 4; do
  run_cell full "$ranks" "$expect_full"
  run_cell spor "$ranks" "$expect_scc"
done

echo "run_dist: all rank-count pins hold"
