#!/usr/bin/env bash
# One-command ThreadSanitizer lane: configure + build the TSan tree
# (build-tsan/, see CMakePresets.json) and run the `parallel` + `engine` +
# `serve` + `memory` + `dist` labeled ctest slices — the worker-pool
# explorer, parallel SPOR, parallel trace, unified-engine driver and
# steal-half batching tests, the mpbserved job queue / result cache / wire
# protocol under contention, and the distributed mesh/rank machinery.
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan-parallel "$@"
