#!/usr/bin/env bash
# One-command bench lane: build the `bench` preset (Release, -O3), run the
# throughput sweep (small + large tiers, best-of-N timing, including the
# dist/rN rank series) plus the small-tier bytes/state sweep, merge both
# record sets, and diff against the committed bench/baseline.json —
# including the tN/t1 parallel-speedup and dist/r1-vs-full/t1 overhead
# comparisons, so "t8 stopped scaling" or "the partition got expensive"
# fails the lane even when raw throughput stays within the noise threshold.
# (The baseline carries both suites' records; comparing either file alone
# would trip bench_compare's series-mismatch check.)
#
# Usage: tools/run_bench.sh [extra explore_throughput args...]
#   MPB_REPEAT   best-of-N per cell (default 3 here; explore_throughput
#                alone defaults to 1)
#   MPB_BENCH_THREADS  thread list for the sweep (default 1,2,8)
#
# To re-baseline after an intentional change:
#   cp build-bench/BENCH_merged.json bench/baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

REPEAT="${MPB_REPEAT:-3}"
THREADS="${MPB_BENCH_THREADS:-1,2,8}"

cmake --preset bench
cmake --build --preset bench -j "$(nproc)"

./build-bench/explore_throughput \
  --out build-bench/BENCH_explore.json \
  --threads "$THREADS" --repeat "$REPEAT" "$@"

./build-bench/state_bytes --small --repeat "$REPEAT" \
  --out build-bench/BENCH_state_bytes.json

python3 - <<'EOF'
import json
exp = json.load(open("build-bench/BENCH_explore.json"))
sb = json.load(open("build-bench/BENCH_state_bytes.json"))
recs = [dict(sorted(r.items())) for r in exp["records"] + sb["records"]]
with open("build-bench/BENCH_merged.json", "w") as f:
    json.dump({"schema": "mpb-bench-v1", "records": recs}, f, indent=1)
    f.write("\n")
EOF

python3 tools/bench_compare.py build-bench/BENCH_merged.json bench/baseline.json
