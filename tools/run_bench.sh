#!/usr/bin/env bash
# One-command bench lane: build the `bench` preset (Release, -O3), run the
# throughput sweep (small + large tiers, best-of-N timing) and diff the fresh
# BENCH_explore.json against the committed bench/baseline.json — including
# the tN/t1 parallel-speedup comparison, so "t8 stopped scaling" fails the
# lane even when raw throughput stays within the noise threshold.
#
# Usage: tools/run_bench.sh [extra explore_throughput args...]
#   MPB_REPEAT   best-of-N per cell (default 3 here; explore_throughput
#                alone defaults to 1)
#   MPB_BENCH_THREADS  thread list for the sweep (default 1,2,8)
#
# To re-baseline after an intentional change:
#   cp build-bench/BENCH_explore.json bench/baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

REPEAT="${MPB_REPEAT:-3}"
THREADS="${MPB_BENCH_THREADS:-1,2,8}"

cmake --preset bench
cmake --build --preset bench -j "$(nproc)"

./build-bench/explore_throughput \
  --out build-bench/BENCH_explore.json \
  --threads "$THREADS" --repeat "$REPEAT" "$@"

python3 tools/bench_compare.py build-bench/BENCH_explore.json bench/baseline.json
